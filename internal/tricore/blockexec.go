package tricore

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/sim"
)

// This file is the decode-once fast path: issueBundleCached mirrors
// issueBundle step for step but walks a pre-decoded isa.Block instead of
// calling isa.Decode on every fetched word. Every timing decision — fetch
// bandwidth and miss charging, structural hazards, scoreboard stalls, stall
// counter attribution — runs through the same code as the per-word path
// (fetchAvail, execute), so the two paths are bit-identical in simulated
// behaviour; only the wall-clock cost per simulated cycle differs.
//
// The executor never crosses a cycle boundary: a bundle is at most one
// cycle's worth of issue, so IRQ windows, wake scheduling and Run chunk
// boundaries keep their per-cycle semantics unchanged.

// issueBundleCached issues one cycle's bundle from the block cache.
func (c *CPU) issueBundleCached(now uint64) {
	d := c.dec
	gen := d.Gen()
	blk, idx := c.blk, c.blkIdx
	// The hint survives from the previous cycle only if no invalidation
	// happened and the pc still points at the hinted instruction.
	if blk != nil && (c.blkGen != gen || idx >= len(blk.Ins) || blk.PC+uint32(idx)*4 != c.pc) {
		blk, idx = nil, 0
	}

	// [4]bool with &3 indexing: Pipe is 0..2 by construction, the mask
	// just proves it to the compiler (no bounds check on the hot path).
	var pipeBusy [4]bool
	issued := 0
	blocks := 0
	width := c.Timing.IssueWidth
	if width <= 0 || width > 3 {
		width = 3
	}

bundle:
	for issued < width {
		if blk == nil {
			// Chained lookup: if the previous bundle ended by exiting a
			// block via taken control flow, follow (or install) a direct
			// block-to-block link instead of the PC-keyed map lookup.
			if from := c.chainFrom; from != nil && c.chainGen == gen {
				blk = d.Next(from, c.pc, c.wordFn)
			} else {
				blk = d.Block(c.pc, c.wordFn)
			}
			c.chainFrom = nil
			idx = 0
		}
		if !c.fetchAvail(now, c.pc, &blocks, issued) {
			break
		}
		di := &blk.Ins[idx]
		if di.Invalid {
			panic(fmt.Sprintf("%s: illegal instruction %#08x at pc %#08x", c.Name, di.Raw, c.pc))
		}
		if pipeBusy[di.Pipe&3] {
			break // structural hazard: pipe already claimed this cycle
		}
		if !c.readyD(now, di) {
			if issued == 0 {
				c.counters.Inc(sim.EvStallCycle)
				if c.loadHazardD(now, di) {
					c.counters.Inc(sim.EvStallData)
				}
			}
			break
		}
		// Threaded dispatch: the handler index was resolved at decode time,
		// so intra-block execution never re-examines the opcode tag.
		flow := handlers[di.HIdx](c, now, di.In)
		pipeBusy[di.Pipe&3] = true
		issued++
		c.counters.Inc(sim.EvInstrExecuted)
		if g := d.Gen(); g != gen {
			// The instruction itself invalidated cached code (a store
			// reaching flash or the overlay): the held block may be stale
			// from the very next instruction on. Drop it and re-decode.
			gen = g
			blk, idx = nil, 0
			if flow || c.halted {
				break
			}
			continue
		}
		if c.halted {
			blk, idx = nil, 0
			break
		}
		if flow {
			// c.pc holds the flow target (or the fall-through pc of a
			// stalled load/store or loop exit). Keep the hint when it
			// lands inside this block — the hot-loop back edge. When it
			// leaves the block, remember the exited block so the next
			// lookup can chain.
			blk, idx = c.rehintChain(blk, gen)
			break
		}
		idx++
		if idx >= len(blk.Ins) {
			blk = nil
			continue
		}

		// Superinstruction shortcuts: di.Fuse encodes a statically known
		// relationship with the successor at idx, letting the bundle skip
		// or collapse the generic per-instruction checks. Every shortcut
		// reproduces exactly what the generic loop would have done.
		switch di.Fuse {
		case isa.FuseSamePipe:
			// The successor needs the pipe the head just claimed and can
			// never issue this cycle; only its fetch timing remains.
			if issued < width {
				c.fetchAvail(now, c.pc, &blocks, issued)
			}
			break bundle
		case isa.FuseLoadUse:
			// The successor reads the head's load destination. Unless the
			// value is somehow already usable (LoadUseLatency 0 on a
			// scratchpad hit), the bundle is over after the tail's fetch.
			if issued < width && c.fetchAvail(now, c.pc, &blocks, issued) &&
				c.regReadyAt[di.In.Rd] <= now {
				continue // genuinely issuable: take the generic path
			}
			break bundle
		case isa.FuseStLoop:
			// Store + LOOP dispatched as one superinstruction: the LOOP
			// executes inline (semantics identical to execute's OpLOOP
			// case) without another trip through the generic loop.
			if issued >= width {
				break bundle
			}
			if !c.fetchAvail(now, c.pc, &blocks, issued) {
				break bundle
			}
			tail := &blk.Ins[idx]
			if pipeBusy[isa.PipeLoop] || c.regReadyAt[tail.In.Ra] > now {
				break bundle
			}
			pc := c.pc
			v := c.regs[tail.In.Ra] - 1
			c.writeReg(tail.In.Ra, v, now+1, false)
			if v != 0 {
				target := pc + uint32(tail.In.Imm)*4
				c.counters.Inc(sim.EvBranchTaken)
				c.pc = target
				c.fetchValid = false
				c.retire(now, pc, tail.In, Retired{Taken: true, Target: target})
			} else {
				c.stall(now, now+c.Timing.TakenPenalty, sim.EvStallFetch)
				c.retire(now, pc, tail.In, Retired{})
				c.pc = pc + 4
			}
			issued++
			c.counters.Inc(sim.EvInstrExecuted)
			blk, idx = c.rehintChain(blk, gen)
			break bundle
		}
	}

	c.blk, c.blkIdx = blk, idx
	if blk != nil {
		c.blkGen = gen
	}
}

// rehint maps pc back into blk, returning the block and index to resume
// at, or (nil, 0) when pc is outside the block.
func rehint(blk *isa.Block, pc uint32) (*isa.Block, int) {
	off := pc - blk.PC
	if off%4 == 0 && off/4 < uint32(len(blk.Ins)) {
		return blk, int(off / 4)
	}
	return nil, 0
}

// rehintChain is rehint plus chain capture: when the flow target leaves
// blk and chaining is on, the exited block is remembered (with the
// generation it is known valid at) so the next lookup goes through
// Decoder.Next. Callers must only use it when no invalidation happened
// during the exiting instruction — the gen-bump path drops hints instead.
func (c *CPU) rehintChain(blk *isa.Block, gen uint64) (*isa.Block, int) {
	nb, ni := rehint(blk, c.pc)
	if nb == nil && c.chain {
		c.chainFrom, c.chainGen = blk, gen
	}
	return nb, ni
}

// readyD is sourcesReady over a pre-decoded instruction: the read-register
// set was computed once at block build time.
func (c *CPU) readyD(now uint64, di *isa.DInstr) bool {
	for i := 0; i < int(di.NRead); i++ {
		if c.regReadyAt[di.Reads[i]] > now {
			return false
		}
	}
	return true
}

// loadHazardD is pendingLoadHazard over a pre-decoded instruction.
func (c *CPU) loadHazardD(now uint64, di *isa.DInstr) bool {
	for i := 0; i < int(di.NRead); i++ {
		r := di.Reads[i]
		if c.regReadyAt[r] > now && c.regFromLoad[r] {
			return true
		}
	}
	return false
}
