package tricore

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/mem"
)

// refMachine is a plain architectural interpreter (no pipeline, no timing)
// used as a differential oracle: whatever the 3-way superscalar core
// computes, the sequential reference must compute too.
type refMachine struct {
	regs [isa.NumRegs]uint32
	csr  [isa.NumCSRs]uint32
	pc   uint32
	mem  map[uint32]byte
	prog map[uint32]uint32
	halt bool
}

func newRef(p *isa.Program) *refMachine {
	m := &refMachine{mem: make(map[uint32]byte), prog: make(map[uint32]uint32), pc: p.Base}
	for i, w := range p.Words {
		m.prog[p.Base+uint32(i)*4] = w
	}
	return m
}

func (m *refMachine) load(addr uint32, size int) uint32 {
	var v uint32
	for i := 0; i < size; i++ {
		v |= uint32(m.mem[addr+uint32(i)]) << (8 * uint(i))
	}
	return v
}

func (m *refMachine) store(addr uint32, v uint32, size int) {
	for i := 0; i < size; i++ {
		m.mem[addr+uint32(i)] = byte(v >> (8 * uint(i)))
	}
}

func (m *refMachine) step() {
	w, ok := m.prog[m.pc]
	if !ok {
		m.halt = true
		return
	}
	in := isa.Decode(w)
	ra, rb := m.regs[in.Ra], m.regs[in.Rb]
	next := m.pc + 4
	wr := func(v uint32) { m.regs[in.Rd] = v }
	switch in.Op {
	case isa.OpNOP, isa.OpDBG:
	case isa.OpMOVI:
		wr(uint32(in.Imm))
	case isa.OpMOVH:
		wr(uint32(in.Imm) << 16)
	case isa.OpORIL:
		wr(m.regs[in.Rd] | uint32(in.Imm))
	case isa.OpADD:
		wr(ra + rb)
	case isa.OpSUB:
		wr(ra - rb)
	case isa.OpAND:
		wr(ra & rb)
	case isa.OpOR:
		wr(ra | rb)
	case isa.OpXOR:
		wr(ra ^ rb)
	case isa.OpSHL:
		wr(ra << (rb & 31))
	case isa.OpSHR:
		wr(ra >> (rb & 31))
	case isa.OpSRA:
		wr(uint32(int32(ra) >> (rb & 31)))
	case isa.OpMUL:
		wr(ra * rb)
	case isa.OpMAC:
		wr(m.regs[in.Rd] + ra*rb)
	case isa.OpSLT:
		wr(boolTo(int32(ra) < int32(rb)))
	case isa.OpSLTU:
		wr(boolTo(ra < rb))
	case isa.OpADDI:
		wr(ra + uint32(in.Imm))
	case isa.OpANDI:
		wr(ra & uint32(in.Imm))
	case isa.OpORI:
		wr(ra | uint32(in.Imm))
	case isa.OpXORI:
		wr(ra ^ uint32(in.Imm))
	case isa.OpSHLI:
		wr(ra << (uint32(in.Imm) & 31))
	case isa.OpSHRI:
		wr(ra >> (uint32(in.Imm) & 31))
	case isa.OpSLTI:
		wr(boolTo(int32(ra) < in.Imm))
	case isa.OpLEA:
		wr(ra + uint32(in.Imm))
	case isa.OpLDW:
		wr(m.load(ra+uint32(in.Imm), 4))
	case isa.OpLDB:
		wr(m.load(ra+uint32(in.Imm), 1))
	case isa.OpSTW:
		m.store(ra+uint32(in.Imm), m.regs[in.Rd], 4)
	case isa.OpSTB:
		m.store(ra+uint32(in.Imm), m.regs[in.Rd], 1)
	case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU:
		taken := false
		switch in.Op {
		case isa.OpBEQ:
			taken = ra == rb
		case isa.OpBNE:
			taken = ra != rb
		case isa.OpBLT:
			taken = int32(ra) < int32(rb)
		case isa.OpBGE:
			taken = int32(ra) >= int32(rb)
		case isa.OpBLTU:
			taken = ra < rb
		case isa.OpBGEU:
			taken = ra >= rb
		}
		if taken {
			m.pc = m.pc + uint32(in.Imm)*4
			return
		}
	case isa.OpLOOP:
		m.regs[in.Ra] = ra - 1
		if ra-1 != 0 {
			m.pc = m.pc + uint32(in.Imm)*4
			return
		}
	case isa.OpJ:
		m.pc = m.pc + uint32(in.Off24)*4
		return
	case isa.OpCALL:
		m.regs[isa.RegLink] = next
		m.pc = m.pc + uint32(in.Off24)*4
		return
	case isa.OpJR:
		m.pc = ra
		return
	case isa.OpMFCR:
		if in.Imm != isa.CsrCCNT { // cycle counter is timing-dependent
			wr(m.csr[in.Imm])
		}
	case isa.OpMTCR:
		if in.Imm != isa.CsrCCNT && in.Imm != isa.CsrCoreID {
			m.csr[in.Imm] = ra
		}
	case isa.OpRFE, isa.OpHALT:
		m.halt = true
		return
	}
	m.pc = next
}

func boolTo(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// genProgram builds a random but well-formed straight-line-plus-loops
// program from a byte recipe. All memory accesses stay inside the DSPR.
func genProgram(recipe []byte) *isa.Program {
	a := isa.NewAsm(mem.FlashBase)
	a.Movw(1, mem.DSPRBase+0x100) // memory base
	// Seed registers deterministically from the recipe.
	for r := 2; r <= 8; r++ {
		v := int32(7 * r)
		if len(recipe) > r {
			v = int32(recipe[r])
		}
		a.Movi(r, v)
	}
	loops := 0
	for i := 0; i+1 < len(recipe); i += 2 {
		op, arg := recipe[i], int32(recipe[i+1])
		rd := 2 + int(op>>4)%7
		ra := 2 + int(arg)%7
		switch op % 12 {
		case 0:
			a.Add(rd, ra, 2+int(op)%7)
		case 1:
			a.Sub(rd, ra, 2+int(op)%7)
		case 2:
			a.Mul(rd, ra, 2+int(op)%7)
		case 3:
			a.Mac(rd, ra, 2+int(op)%7)
		case 4:
			a.Addi(rd, ra, arg-128)
		case 5:
			a.Xori(rd, ra, arg)
		case 6:
			a.Shli(rd, ra, arg%31+1)
		case 7:
			a.Ldw(rd, 1, (arg%32)*4)
		case 8:
			a.Stw(rd, 1, (arg%32)*4)
		case 9:
			a.Slt(rd, ra, 2+int(op)%7)
		case 10:
			// Short forward branch over one instruction.
			lbl := a.PC() // unique label from position
			name := labelName(lbl)
			a.Beq(ra, 2+int(op)%7, name)
			a.Addi(rd, rd, 1)
			a.Label(name)
		case 11:
			if loops < 4 {
				loops++
				cnt := 9 + int(arg)%7
				a.Movi(8, int32(cnt))
				name := labelName(a.PC())
				a.Label(name)
				a.Addi(rd, rd, 3)
				a.Loop(8, name)
			}
		}
	}
	a.Halt()
	p, err := a.Assemble()
	if err != nil {
		panic(err)
	}
	return p
}

func labelName(pc uint32) string {
	return "L" + string(rune('a'+pc>>8&0xF)) + string(rune('a'+pc>>4&0xF)) + string(rune('a'+pc&0xF)) + string(rune('a'+pc>>12&0xF))
}

// TestDifferentialVsReference runs random programs on the pipelined core
// and on the sequential reference machine; architectural state (registers
// and memory) must match exactly — pipelining, caches, buffers, and
// superscalar issue are invisible to software.
func TestDifferentialVsReference(t *testing.T) {
	f := func(recipe []byte) bool {
		if len(recipe) > 120 {
			recipe = recipe[:120]
		}
		p := genProgram(recipe)

		// Reference.
		ref := newRef(p)
		for i := 0; i < 200_000 && !ref.halt; i++ {
			ref.step()
		}
		if !ref.halt {
			return true // pathological non-terminating recipe; skip
		}

		// Pipelined core, on the full memory system.
		for _, opt := range []rigOpt{{icache: true, dcache: true, prefetch: true}, {}} {
			r := newRigQuiet(t, opt)
			r.load(t, p)
			if _, ok := r.clock.RunUntil(r.cpu.Halted, 5_000_000); !ok {
				t.Logf("core did not halt for recipe %v", recipe)
				return false
			}
			for reg := 2; reg <= 8; reg++ {
				if r.cpu.Reg(reg) != ref.regs[reg] {
					t.Logf("r%d: core %#x ref %#x", reg, r.cpu.Reg(reg), ref.regs[reg])
					return false
				}
			}
			// Compare the touched DSPR window.
			for off := uint32(0); off < 32*4; off += 4 {
				addr := uint32(mem.DSPRBase) + 0x100 + off
				if got, want := r.dspr.Read32(addr), ref.load(addr, 4); got != want {
					t.Logf("mem %#x: core %#x ref %#x", addr, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// newRigQuiet is newRig without the test-helper peek fatal (differential
// programs never leave the mapped regions, so the same rig works).
func newRigQuiet(t *testing.T, opt rigOpt) *rig { return newRig(t, opt) }
