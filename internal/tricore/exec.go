package tricore

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/sim"
)

// opFn is one threaded-dispatch handler: the full architectural and timing
// effect of a single instruction. A handler returns true when control flow
// changed (ending the issue bundle). The block executor calls handlers
// through the table using the index resolved at decode time (DInstr.HIdx);
// the per-word reference path goes through execute, which indexes the same
// table — one implementation of the semantics, two dispatch styles, so the
// paths cannot drift apart.
type opFn func(c *CPU, now uint64, in isa.Instr) bool

// handlers is the dispatch table. Indices [0, isa.NumOps) are the opcode
// values themselves (DInstr.HIdx keeps the full uint8 space so fused
// superinstructions can claim indices above isa.NumOps later). Sparse
// array-literal form keeps each op next to its handler; init verifies the
// table is total so a decode-valid op can never hit a nil entry.
var handlers = [isa.NumOps]opFn{
	isa.OpNOP:  execNOP,
	isa.OpMOVI: execMOVI,
	isa.OpMOVH: execMOVH,
	isa.OpORIL: execORIL,
	isa.OpADD:  execADD,
	isa.OpSUB:  execSUB,
	isa.OpAND:  execAND,
	isa.OpOR:   execOR,
	isa.OpXOR:  execXOR,
	isa.OpSHL:  execSHL,
	isa.OpSHR:  execSHR,
	isa.OpSRA:  execSRA,
	isa.OpMUL:  execMUL,
	isa.OpMAC:  execMAC,
	isa.OpSLT:  execSLT,
	isa.OpSLTU: execSLTU,
	isa.OpADDI: execADDI,
	isa.OpANDI: execANDI,
	isa.OpORI:  execORI,
	isa.OpXORI: execXORI,
	isa.OpSHLI: execSHLI,
	isa.OpSHRI: execSHRI,
	isa.OpSLTI: execSLTI,
	isa.OpLEA:  execLEA,
	isa.OpLDW:  execLoad,
	isa.OpLDB:  execLoad,
	isa.OpSTW:  execStore,
	isa.OpSTB:  execStore,
	isa.OpBEQ:  execBEQ,
	isa.OpBNE:  execBNE,
	isa.OpBLT:  execBLT,
	isa.OpBGE:  execBGE,
	isa.OpBLTU: execBLTU,
	isa.OpBGEU: execBGEU,
	isa.OpLOOP: execLOOP,
	isa.OpJ:    execJ,
	isa.OpCALL: execCALL,
	isa.OpJR:   execJR,
	isa.OpMFCR: execMFCR,
	isa.OpMTCR: execMTCR,
	isa.OpRFE:  execRFE,
	isa.OpHALT: execHALT,
	isa.OpDBG:  execDBG,
}

func init() {
	for op, fn := range handlers {
		if fn == nil {
			panic(fmt.Sprintf("tricore: no handler for opcode %v", isa.Op(op)))
		}
	}
}

// execute dispatches one instruction through the handler table. The
// per-word reference path calls it after validating the op; the block
// executor bypasses it and indexes handlers directly via DInstr.HIdx.
func (c *CPU) execute(now uint64, in isa.Instr) bool {
	return handlers[in.Op](c, now, in)
}

// fin is the shared epilogue for straight-line instructions: retire,
// advance the PC, keep the bundle going.
func (c *CPU) fin(now uint64, in isa.Instr) bool {
	c.retire(now, c.pc, in, Retired{})
	c.pc += 4
	return false
}

func execNOP(c *CPU, now uint64, in isa.Instr) bool {
	return c.fin(now, in)
}

func execDBG(c *CPU, now uint64, in isa.Instr) bool {
	if c.OnDbg != nil {
		c.OnDbg(now, c.pc)
	}
	return c.fin(now, in)
}

func execMOVI(c *CPU, now uint64, in isa.Instr) bool {
	c.writeReg(in.Rd, uint32(in.Imm), now+1, false)
	return c.fin(now, in)
}

func execMOVH(c *CPU, now uint64, in isa.Instr) bool {
	c.writeReg(in.Rd, uint32(in.Imm)<<16, now+1, false)
	return c.fin(now, in)
}

func execORIL(c *CPU, now uint64, in isa.Instr) bool {
	c.writeReg(in.Rd, c.regs[in.Rd]|uint32(in.Imm), now+1, false)
	return c.fin(now, in)
}

func execADD(c *CPU, now uint64, in isa.Instr) bool {
	c.writeReg(in.Rd, c.regs[in.Ra]+c.regs[in.Rb], now+1, false)
	return c.fin(now, in)
}

func execSUB(c *CPU, now uint64, in isa.Instr) bool {
	c.writeReg(in.Rd, c.regs[in.Ra]-c.regs[in.Rb], now+1, false)
	return c.fin(now, in)
}

func execAND(c *CPU, now uint64, in isa.Instr) bool {
	c.writeReg(in.Rd, c.regs[in.Ra]&c.regs[in.Rb], now+1, false)
	return c.fin(now, in)
}

func execOR(c *CPU, now uint64, in isa.Instr) bool {
	c.writeReg(in.Rd, c.regs[in.Ra]|c.regs[in.Rb], now+1, false)
	return c.fin(now, in)
}

func execXOR(c *CPU, now uint64, in isa.Instr) bool {
	c.writeReg(in.Rd, c.regs[in.Ra]^c.regs[in.Rb], now+1, false)
	return c.fin(now, in)
}

func execSHL(c *CPU, now uint64, in isa.Instr) bool {
	c.writeReg(in.Rd, c.regs[in.Ra]<<(c.regs[in.Rb]&31), now+1, false)
	return c.fin(now, in)
}

func execSHR(c *CPU, now uint64, in isa.Instr) bool {
	c.writeReg(in.Rd, c.regs[in.Ra]>>(c.regs[in.Rb]&31), now+1, false)
	return c.fin(now, in)
}

func execSRA(c *CPU, now uint64, in isa.Instr) bool {
	c.writeReg(in.Rd, uint32(int32(c.regs[in.Ra])>>(c.regs[in.Rb]&31)), now+1, false)
	return c.fin(now, in)
}

func execMUL(c *CPU, now uint64, in isa.Instr) bool {
	c.writeReg(in.Rd, c.regs[in.Ra]*c.regs[in.Rb], now+c.Timing.MulLatency, false)
	return c.fin(now, in)
}

func execMAC(c *CPU, now uint64, in isa.Instr) bool {
	c.writeReg(in.Rd, c.regs[in.Rd]+c.regs[in.Ra]*c.regs[in.Rb], now+c.Timing.MulLatency, false)
	return c.fin(now, in)
}

func execSLT(c *CPU, now uint64, in isa.Instr) bool {
	c.writeReg(in.Rd, b2u(int32(c.regs[in.Ra]) < int32(c.regs[in.Rb])), now+1, false)
	return c.fin(now, in)
}

func execSLTU(c *CPU, now uint64, in isa.Instr) bool {
	c.writeReg(in.Rd, b2u(c.regs[in.Ra] < c.regs[in.Rb]), now+1, false)
	return c.fin(now, in)
}

func execADDI(c *CPU, now uint64, in isa.Instr) bool {
	c.writeReg(in.Rd, c.regs[in.Ra]+uint32(in.Imm), now+1, false)
	return c.fin(now, in)
}

func execANDI(c *CPU, now uint64, in isa.Instr) bool {
	c.writeReg(in.Rd, c.regs[in.Ra]&uint32(in.Imm), now+1, false)
	return c.fin(now, in)
}

func execORI(c *CPU, now uint64, in isa.Instr) bool {
	c.writeReg(in.Rd, c.regs[in.Ra]|uint32(in.Imm), now+1, false)
	return c.fin(now, in)
}

func execXORI(c *CPU, now uint64, in isa.Instr) bool {
	c.writeReg(in.Rd, c.regs[in.Ra]^uint32(in.Imm), now+1, false)
	return c.fin(now, in)
}

func execSHLI(c *CPU, now uint64, in isa.Instr) bool {
	c.writeReg(in.Rd, c.regs[in.Ra]<<(uint32(in.Imm)&31), now+1, false)
	return c.fin(now, in)
}

func execSHRI(c *CPU, now uint64, in isa.Instr) bool {
	c.writeReg(in.Rd, c.regs[in.Ra]>>(uint32(in.Imm)&31), now+1, false)
	return c.fin(now, in)
}

func execSLTI(c *CPU, now uint64, in isa.Instr) bool {
	c.writeReg(in.Rd, b2u(int32(c.regs[in.Ra]) < in.Imm), now+1, false)
	return c.fin(now, in)
}

func execLEA(c *CPU, now uint64, in isa.Instr) bool {
	c.writeReg(in.Rd, c.regs[in.Ra]+uint32(in.Imm), now+1, false)
	return c.fin(now, in)
}

func execLoad(c *CPU, now uint64, in isa.Instr) bool {
	pc := c.pc
	ea := c.regs[in.Ra] + uint32(in.Imm)
	size := 4
	if in.Op == isa.OpLDB {
		size = 1
	}
	buf := c.memBuf[:size]
	ready := c.DMI.Load(now, ea, buf)
	v := uint32(buf[0])
	if size == 4 {
		v |= uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24
	}
	if ready > now {
		// Miss or bus access: the LS pipe blocks.
		c.stall(now, ready, sim.EvStallData)
	}
	c.writeReg(in.Rd, v, maxU64(ready, now)+c.Timing.LoadUseLatency, true)
	c.retire(now, pc, in, Retired{HasMem: true, EA: ea, Data: v})
	c.pc = pc + 4
	return ready > now // a stalled load ends the bundle
}

func execStore(c *CPU, now uint64, in isa.Instr) bool {
	pc := c.pc
	ea := c.regs[in.Ra] + uint32(in.Imm)
	v := c.regs[in.Rd]
	c.memBuf[0], c.memBuf[1], c.memBuf[2], c.memBuf[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	size := 4
	if in.Op == isa.OpSTB {
		size = 1
	}
	// Single-entry posted store buffer: a second store while one is
	// outstanding stalls until the first drains.
	start := now
	if c.storeBusyUntil > now {
		c.stall(now, c.storeBusyUntil, sim.EvStallData)
		start = c.storeBusyUntil
	}
	c.storeBusyUntil = c.DMI.Store(start, ea, c.memBuf[:size])
	c.retire(now, pc, in, Retired{HasMem: true, EA: ea, Write: true, Data: v})
	c.pc = pc + 4
	return c.stallUntil > now
}

// condBranch applies the shared conditional-branch timing model: static
// prediction, backward taken / forward not taken.
func condBranch(c *CPU, now uint64, in isa.Instr, taken bool) bool {
	pc := c.pc
	backward := in.Imm < 0
	target := pc + uint32(in.Imm)*4
	if taken {
		c.counters.Inc(sim.EvBranchTaken)
		c.pc = target
		c.fetchValid = false
		if backward {
			c.stall(now, now+c.Timing.TakenPenalty, sim.EvStallFetch)
		} else {
			c.counters.Inc(sim.EvBranchMiss)
			c.stall(now, now+c.Timing.MispredictFlush, sim.EvStallFetch)
		}
		c.retire(now, pc, in, Retired{Taken: true, Target: target})
		return true
	}
	if backward {
		c.counters.Inc(sim.EvBranchMiss)
		c.stall(now, now+c.Timing.MispredictFlush, sim.EvStallFetch)
		c.retire(now, pc, in, Retired{})
		c.pc = pc + 4
		return true
	}
	c.retire(now, pc, in, Retired{})
	c.pc = pc + 4
	return false
}

func execBEQ(c *CPU, now uint64, in isa.Instr) bool {
	return condBranch(c, now, in, c.regs[in.Ra] == c.regs[in.Rb])
}

func execBNE(c *CPU, now uint64, in isa.Instr) bool {
	return condBranch(c, now, in, c.regs[in.Ra] != c.regs[in.Rb])
}

func execBLT(c *CPU, now uint64, in isa.Instr) bool {
	return condBranch(c, now, in, int32(c.regs[in.Ra]) < int32(c.regs[in.Rb]))
}

func execBGE(c *CPU, now uint64, in isa.Instr) bool {
	return condBranch(c, now, in, int32(c.regs[in.Ra]) >= int32(c.regs[in.Rb]))
}

func execBLTU(c *CPU, now uint64, in isa.Instr) bool {
	return condBranch(c, now, in, c.regs[in.Ra] < c.regs[in.Rb])
}

func execBGEU(c *CPU, now uint64, in isa.Instr) bool {
	return condBranch(c, now, in, c.regs[in.Ra] >= c.regs[in.Rb])
}

func execLOOP(c *CPU, now uint64, in isa.Instr) bool {
	pc := c.pc
	v := c.regs[in.Ra] - 1
	c.writeReg(in.Ra, v, now+1, false)
	if v != 0 {
		target := pc + uint32(in.Imm)*4
		c.counters.Inc(sim.EvBranchTaken)
		c.pc = target
		c.fetchValid = false
		// Loop pipe: zero-overhead taken back-branch.
		c.retire(now, pc, in, Retired{Taken: true, Target: target})
		return true
	}
	// Loop exit: one bubble (the loop pipe predicted taken).
	c.stall(now, now+c.Timing.TakenPenalty, sim.EvStallFetch)
	c.retire(now, pc, in, Retired{})
	c.pc = pc + 4
	return true
}

func execJ(c *CPU, now uint64, in isa.Instr) bool {
	pc := c.pc
	target := pc + uint32(in.Off24)*4
	c.counters.Inc(sim.EvBranchTaken)
	c.pc = target
	c.fetchValid = false
	c.stall(now, now+c.Timing.TakenPenalty, sim.EvStallFetch)
	c.retire(now, pc, in, Retired{Taken: true, Target: target})
	return true
}

func execCALL(c *CPU, now uint64, in isa.Instr) bool {
	pc := c.pc
	target := pc + uint32(in.Off24)*4
	c.writeReg(isa.RegLink, pc+4, now+1, false)
	c.counters.Inc(sim.EvBranchTaken)
	c.pc = target
	c.fetchValid = false
	c.stall(now, now+c.Timing.TakenPenalty, sim.EvStallFetch)
	c.retire(now, pc, in, Retired{Taken: true, Target: target})
	return true
}

func execJR(c *CPU, now uint64, in isa.Instr) bool {
	pc := c.pc
	target := c.regs[in.Ra]
	c.counters.Inc(sim.EvBranchTaken)
	c.pc = target
	c.fetchValid = false
	c.stall(now, now+c.Timing.IndirectPenalty, sim.EvStallFetch)
	c.retire(now, pc, in, Retired{Taken: true, Target: target})
	return true
}

func execMFCR(c *CPU, now uint64, in isa.Instr) bool {
	n := int(in.Imm)
	if n < 0 || n >= isa.NumCSRs {
		panic(fmt.Sprintf("%s: mfcr of unknown csr %d", c.Name, n))
	}
	v := c.csr[n]
	if n == isa.CsrCCNT {
		v = uint32(now)
	}
	c.writeReg(in.Rd, v, now+1, false)
	return c.fin(now, in)
}

func execMTCR(c *CPU, now uint64, in isa.Instr) bool {
	n := int(in.Imm)
	if n < 0 || n >= isa.NumCSRs {
		panic(fmt.Sprintf("%s: mtcr of unknown csr %d", c.Name, n))
	}
	if n != isa.CsrCCNT && n != isa.CsrCoreID {
		c.csr[n] = c.regs[in.Ra]
	}
	return c.fin(now, in)
}

func execRFE(c *CPU, now uint64, in isa.Instr) bool {
	pc := c.pc
	if len(c.shadow) == 0 {
		// RFE outside an interrupt stops the core; the PCP uses this as
		// "channel done".
		c.halted = true
		c.retire(now, pc, in, Retired{})
		return true
	}
	fr := c.shadow[len(c.shadow)-1]
	c.shadow = c.shadow[:len(c.shadow)-1]
	c.csr[isa.CsrICR] = fr.icr
	c.pc = fr.pc
	c.fetchValid = false
	c.counters.Inc(sim.EvInterruptExit)
	c.stall(now, now+c.Timing.IndirectPenalty, sim.EvStallFetch)
	c.retire(now, pc, in, Retired{Taken: true, Target: fr.pc})
	return true
}

func execHALT(c *CPU, now uint64, in isa.Instr) bool {
	c.halted = true
	c.retire(now, c.pc, in, Retired{})
	return true
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
