package tricore

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/sim"
)

// execute performs the architectural and timing effects of one instruction
// and returns true when control flow changed (ending the issue bundle).
func (c *CPU) execute(now uint64, in isa.Instr) bool {
	pc := c.pc
	next := pc + 4
	ra, rb := c.regs[in.Ra], c.regs[in.Rb]

	switch in.Op {
	case isa.OpNOP:
		// nothing

	case isa.OpDBG:
		if c.OnDbg != nil {
			c.OnDbg(now, pc)
		}

	case isa.OpMOVI:
		c.writeReg(in.Rd, uint32(in.Imm), now+1, false)
	case isa.OpMOVH:
		c.writeReg(in.Rd, uint32(in.Imm)<<16, now+1, false)
	case isa.OpORIL:
		c.writeReg(in.Rd, c.regs[in.Rd]|uint32(in.Imm), now+1, false)

	case isa.OpADD:
		c.writeReg(in.Rd, ra+rb, now+1, false)
	case isa.OpSUB:
		c.writeReg(in.Rd, ra-rb, now+1, false)
	case isa.OpAND:
		c.writeReg(in.Rd, ra&rb, now+1, false)
	case isa.OpOR:
		c.writeReg(in.Rd, ra|rb, now+1, false)
	case isa.OpXOR:
		c.writeReg(in.Rd, ra^rb, now+1, false)
	case isa.OpSHL:
		c.writeReg(in.Rd, ra<<(rb&31), now+1, false)
	case isa.OpSHR:
		c.writeReg(in.Rd, ra>>(rb&31), now+1, false)
	case isa.OpSRA:
		c.writeReg(in.Rd, uint32(int32(ra)>>(rb&31)), now+1, false)
	case isa.OpMUL:
		c.writeReg(in.Rd, ra*rb, now+c.Timing.MulLatency, false)
	case isa.OpMAC:
		c.writeReg(in.Rd, c.regs[in.Rd]+ra*rb, now+c.Timing.MulLatency, false)
	case isa.OpSLT:
		c.writeReg(in.Rd, b2u(int32(ra) < int32(rb)), now+1, false)
	case isa.OpSLTU:
		c.writeReg(in.Rd, b2u(ra < rb), now+1, false)

	case isa.OpADDI:
		c.writeReg(in.Rd, ra+uint32(in.Imm), now+1, false)
	case isa.OpANDI:
		c.writeReg(in.Rd, ra&uint32(in.Imm), now+1, false)
	case isa.OpORI:
		c.writeReg(in.Rd, ra|uint32(in.Imm), now+1, false)
	case isa.OpXORI:
		c.writeReg(in.Rd, ra^uint32(in.Imm), now+1, false)
	case isa.OpSHLI:
		c.writeReg(in.Rd, ra<<(uint32(in.Imm)&31), now+1, false)
	case isa.OpSHRI:
		c.writeReg(in.Rd, ra>>(uint32(in.Imm)&31), now+1, false)
	case isa.OpSLTI:
		c.writeReg(in.Rd, b2u(int32(ra) < in.Imm), now+1, false)
	case isa.OpLEA:
		c.writeReg(in.Rd, ra+uint32(in.Imm), now+1, false)

	case isa.OpLDW, isa.OpLDB:
		ea := ra + uint32(in.Imm)
		size := 4
		if in.Op == isa.OpLDB {
			size = 1
		}
		buf := c.memBuf[:size]
		ready := c.DMI.Load(now, ea, buf)
		v := uint32(buf[0])
		if size == 4 {
			v |= uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24
		}
		if ready > now {
			// Miss or bus access: the LS pipe blocks.
			c.stall(now, ready, sim.EvStallData)
		}
		c.writeReg(in.Rd, v, maxU64(ready, now)+c.Timing.LoadUseLatency, true)
		c.retire(now, pc, in, Retired{HasMem: true, EA: ea, Data: v})
		c.pc = next
		return ready > now // a stalled load ends the bundle

	case isa.OpSTW, isa.OpSTB:
		ea := ra + uint32(in.Imm)
		v := c.regs[in.Rd]
		c.memBuf[0], c.memBuf[1], c.memBuf[2], c.memBuf[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		size := 4
		if in.Op == isa.OpSTB {
			size = 1
		}
		// Single-entry posted store buffer: a second store while one is
		// outstanding stalls until the first drains.
		start := now
		if c.storeBusyUntil > now {
			c.stall(now, c.storeBusyUntil, sim.EvStallData)
			start = c.storeBusyUntil
		}
		c.storeBusyUntil = c.DMI.Store(start, ea, c.memBuf[:size])
		c.retire(now, pc, in, Retired{HasMem: true, EA: ea, Write: true, Data: v})
		c.pc = next
		return c.stallUntil > now

	case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU:
		taken := false
		switch in.Op {
		case isa.OpBEQ:
			taken = ra == rb
		case isa.OpBNE:
			taken = ra != rb
		case isa.OpBLT:
			taken = int32(ra) < int32(rb)
		case isa.OpBGE:
			taken = int32(ra) >= int32(rb)
		case isa.OpBLTU:
			taken = ra < rb
		case isa.OpBGEU:
			taken = ra >= rb
		}
		backward := in.Imm < 0
		target := pc + uint32(in.Imm)*4
		// Static prediction: backward taken, forward not taken.
		if taken {
			c.counters.Inc(sim.EvBranchTaken)
			c.pc = target
			c.fetchValid = false
			if backward {
				c.stall(now, now+c.Timing.TakenPenalty, sim.EvStallFetch)
			} else {
				c.counters.Inc(sim.EvBranchMiss)
				c.stall(now, now+c.Timing.MispredictFlush, sim.EvStallFetch)
			}
			c.retire(now, pc, in, Retired{Taken: true, Target: target})
			return true
		}
		if backward {
			c.counters.Inc(sim.EvBranchMiss)
			c.stall(now, now+c.Timing.MispredictFlush, sim.EvStallFetch)
			c.retire(now, pc, in, Retired{})
			c.pc = next
			return true
		}
		c.retire(now, pc, in, Retired{})
		c.pc = next
		return false

	case isa.OpLOOP:
		v := ra - 1
		c.writeReg(in.Ra, v, now+1, false)
		if v != 0 {
			target := pc + uint32(in.Imm)*4
			c.counters.Inc(sim.EvBranchTaken)
			c.pc = target
			c.fetchValid = false
			// Loop pipe: zero-overhead taken back-branch.
			c.retire(now, pc, in, Retired{Taken: true, Target: target})
			return true
		}
		// Loop exit: one bubble (the loop pipe predicted taken).
		c.stall(now, now+c.Timing.TakenPenalty, sim.EvStallFetch)
		c.retire(now, pc, in, Retired{})
		c.pc = next
		return true

	case isa.OpJ:
		target := pc + uint32(in.Off24)*4
		c.counters.Inc(sim.EvBranchTaken)
		c.pc = target
		c.fetchValid = false
		c.stall(now, now+c.Timing.TakenPenalty, sim.EvStallFetch)
		c.retire(now, pc, in, Retired{Taken: true, Target: target})
		return true

	case isa.OpCALL:
		target := pc + uint32(in.Off24)*4
		c.writeReg(isa.RegLink, next, now+1, false)
		c.counters.Inc(sim.EvBranchTaken)
		c.pc = target
		c.fetchValid = false
		c.stall(now, now+c.Timing.TakenPenalty, sim.EvStallFetch)
		c.retire(now, pc, in, Retired{Taken: true, Target: target})
		return true

	case isa.OpJR:
		c.counters.Inc(sim.EvBranchTaken)
		c.pc = ra
		c.fetchValid = false
		c.stall(now, now+c.Timing.IndirectPenalty, sim.EvStallFetch)
		c.retire(now, pc, in, Retired{Taken: true, Target: ra})
		return true

	case isa.OpMFCR:
		n := int(in.Imm)
		if n < 0 || n >= isa.NumCSRs {
			panic(fmt.Sprintf("%s: mfcr of unknown csr %d", c.Name, n))
		}
		v := c.csr[n]
		if n == isa.CsrCCNT {
			v = uint32(now)
		}
		c.writeReg(in.Rd, v, now+1, false)

	case isa.OpMTCR:
		n := int(in.Imm)
		if n < 0 || n >= isa.NumCSRs {
			panic(fmt.Sprintf("%s: mtcr of unknown csr %d", c.Name, n))
		}
		if n != isa.CsrCCNT && n != isa.CsrCoreID {
			c.csr[n] = ra
		}

	case isa.OpRFE:
		if len(c.shadow) == 0 {
			// RFE outside an interrupt stops the core; the PCP uses this
			// as "channel done".
			c.halted = true
			c.retire(now, pc, in, Retired{})
			return true
		}
		fr := c.shadow[len(c.shadow)-1]
		c.shadow = c.shadow[:len(c.shadow)-1]
		c.csr[isa.CsrICR] = fr.icr
		c.pc = fr.pc
		c.fetchValid = false
		c.counters.Inc(sim.EvInterruptExit)
		c.stall(now, now+c.Timing.IndirectPenalty, sim.EvStallFetch)
		c.retire(now, pc, in, Retired{Taken: true, Target: fr.pc})
		return true

	case isa.OpHALT:
		c.halted = true
		c.retire(now, pc, in, Retired{})
		return true

	default:
		panic(fmt.Sprintf("%s: unimplemented opcode %v", c.Name, in.Op))
	}

	c.retire(now, pc, in, Retired{})
	c.pc = next
	return false
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
