package tricore

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Backdoor reads memory content without timing. The SoC assembly provides
// one that resolves any mapped address (flash image, SRAM, scratchpads).
// It exists because the caches are tag-only timing models: data always
// lives in the backing store.
type Backdoor func(addr uint32, p []byte)

// PMI is the program memory interface of a core: program scratchpad,
// optional instruction cache, and the fetch path onto the program bus.
// It mirrors the TriCore PMI unit.
type PMI struct {
	ICache *cache.Cache // nil = no instruction cache
	PSPR   *mem.RAM     // nil = no program scratchpad
	Bus    *bus.Bus     // program LMB (reaches the flash code port)
	Master int          // bus master id of this core's fetch port
	Peek   Backdoor

	ctrs *sim.Counters
	req  bus.Request // scratch request (avoids per-access allocation)
	fill []byte      // scratch fill buffer
}

// FetchBlock performs a timed fetch of the aligned 8-byte block containing
// addr and returns the cycle at which its instructions may issue. Events
// are counted into the core's counter set.
func (p *PMI) FetchBlock(now uint64, addr uint32) uint64 {
	block := addr &^ 7
	if p.PSPR != nil && p.PSPR.Contains(block, 8) {
		// Program scratchpad (or PCP code RAM): single-cycle local fetch.
		p.ctrs.Inc(sim.EvIScratchAccess)
		return now
	}
	switch mem.Segment(addr) {
	case mem.FlashBase: // cached flash view
		if p.ICache == nil {
			return p.fetchUncached(now, block)
		}
		if p.ICache.Lookup(block) {
			return now
		}
		// Line fill over the program bus.
		line := block &^ (p.ICache.LineBytes() - 1)
		if p.fill == nil {
			p.fill = make([]byte, p.ICache.LineBytes())
		}
		p.req = bus.Request{Master: p.Master, Addr: line, Data: p.fill, Fetch: true}
		done, err := p.Bus.Access(now, &p.req)
		if err != nil {
			panic(fmt.Sprintf("pmi: fetch fill failed: %v", err))
		}
		p.ctrs.Inc(sim.EvIFlashAccess)
		p.ICache.Fill(block)
		return done

	case mem.FlashUncach:
		return p.fetchUncached(now, block)

	default:
		panic(fmt.Sprintf("pmi: fetch from unsupported segment %#08x", addr))
	}
}

func (p *PMI) fetchUncached(now uint64, block uint32) uint64 {
	if p.fill == nil || len(p.fill) < 8 {
		p.fill = make([]byte, 8)
	}
	p.req = bus.Request{Master: p.Master, Addr: block, Data: p.fill[:8], Fetch: true}
	done, err := p.Bus.Access(now, &p.req)
	if err != nil {
		panic(fmt.Sprintf("pmi: uncached fetch failed: %v", err))
	}
	p.ctrs.Inc(sim.EvIFlashAccess)
	return done
}

// Word returns the instruction word at addr via the backdoor.
func (p *PMI) Word(addr uint32) uint32 {
	if p.PSPR != nil && p.PSPR.Contains(addr, 4) {
		return p.PSPR.Read32(addr)
	}
	var b [4]byte
	p.Peek(addr, b[:])
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// DMI is the data memory interface of a core: data scratchpad, optional
// data cache, and the load/store path onto the data bus. It mirrors the
// TriCore DMI unit.
type DMI struct {
	DCache *cache.Cache // nil = no data cache
	DSPR   *mem.RAM     // nil = no data scratchpad
	Bus    *bus.Bus     // data LMB (reaches flash data port, SRAM, bridge)
	Master int
	Peek   Backdoor

	ctrs *sim.Counters
	req  bus.Request // scratch request (avoids per-access allocation)
	fill []byte      // scratch line-fill buffer
}

// classify counts the region event for a data access that reaches the
// given physical address region over the bus.
func (d *DMI) classify(addr uint32, write bool) {
	switch mem.Segment(addr) {
	case mem.FlashBase, mem.FlashUncach:
		if !write {
			d.ctrs.Inc(sim.EvDFlashRead)
		}
	case mem.SRAMBase, mem.SRAMUncach:
		d.ctrs.Inc(sim.EvDSRAMAccess)
	case mem.PeriphBase, mem.PRAMBase:
		d.ctrs.Inc(sim.EvDPeriphAccess)
	}
}

// Load performs a timed data read of len(p) bytes at addr and returns the
// cycle at which the value is usable.
func (d *DMI) Load(now uint64, addr uint32, p []byte) uint64 {
	if d.DSPR != nil && d.DSPR.Contains(addr, len(p)) {
		d.ctrs.Inc(sim.EvDScratchAccess)
		d.DSPR.Read(addr, p)
		return now
	}
	seg := mem.Segment(addr)
	cacheable := seg == mem.FlashBase || seg == mem.SRAMBase
	if cacheable && d.DCache != nil {
		if d.DCache.Lookup(addr) {
			d.Peek(addr, p)
			return now
		}
		line := addr &^ (d.DCache.LineBytes() - 1)
		if d.fill == nil {
			d.fill = make([]byte, d.DCache.LineBytes())
		}
		d.req = bus.Request{Master: d.Master, Addr: line, Data: d.fill}
		done, err := d.Bus.Access(now, &d.req)
		if err != nil {
			panic(fmt.Sprintf("dmi: load fill failed: %v", err))
		}
		d.classify(addr, false)
		d.DCache.Fill(addr)
		d.Peek(addr, p)
		return done
	}
	d.req = bus.Request{Master: d.Master, Addr: addr, Data: p}
	done, err := d.Bus.Access(now, &d.req)
	if err != nil {
		panic(fmt.Sprintf("dmi: load failed: %v", err))
	}
	d.classify(addr, false)
	return done
}

// Store performs a timed data write (write-through, no-allocate) and
// returns the cycle at which the write is committed at the target.
func (d *DMI) Store(now uint64, addr uint32, p []byte) uint64 {
	if d.DSPR != nil && d.DSPR.Contains(addr, len(p)) {
		d.ctrs.Inc(sim.EvDScratchAccess)
		d.DSPR.Write(addr, p)
		return now
	}
	d.req = bus.Request{Master: d.Master, Addr: addr, Data: p, Write: true}
	done, err := d.Bus.Access(now, &d.req)
	if err != nil {
		panic(fmt.Sprintf("dmi: store failed: %v", err))
	}
	d.classify(addr, true)
	return done
}
