package tricore

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

func TestArithmeticProgram(t *testing.T) {
	r := newRig(t, rigOpt{icache: true})
	a := isa.NewAsm(mem.FlashBase)
	a.Movi(1, 6)
	a.Movi(2, 7)
	a.Mul(3, 1, 2)     // 42
	a.Addi(3, 3, 100)  // 142
	a.Sub(4, 3, 1)     // 136
	a.Shli(5, 4, 2)    // 544
	a.Xori(5, 5, 0xFF) // 544 ^ 255
	a.Slt(6, 1, 2)     // 1
	a.Halt()
	r.load(t, mustAsm(t, a))
	r.run(t, 10_000)
	if got := r.cpu.Reg(3); got != 142 {
		t.Errorf("r3 = %d, want 142", got)
	}
	if got := r.cpu.Reg(5); got != 544^255 {
		t.Errorf("r5 = %d, want %d", got, 544^255)
	}
	if got := r.cpu.Reg(6); got != 1 {
		t.Errorf("r6 = %d, want 1", got)
	}
}

func TestMovwWideConstants(t *testing.T) {
	r := newRig(t, rigOpt{icache: true})
	a := isa.NewAsm(mem.FlashBase)
	a.Movw(1, 0xDEADBEEF)
	a.Movw(2, 0x12345678)
	a.Halt()
	r.load(t, mustAsm(t, a))
	r.run(t, 1000)
	if r.cpu.Reg(1) != 0xDEADBEEF || r.cpu.Reg(2) != 0x12345678 {
		t.Errorf("r1=%#x r2=%#x", r.cpu.Reg(1), r.cpu.Reg(2))
	}
}

func TestLoadStoreDSPR(t *testing.T) {
	r := newRig(t, rigOpt{icache: true})
	a := isa.NewAsm(mem.FlashBase)
	a.Movw(1, mem.DSPRBase)
	a.Movi(2, 1234)
	a.Stw(2, 1, 16)
	a.Ldw(3, 1, 16)
	a.Movi(4, 0xAB)
	a.Stb(4, 1, 20)
	a.Ldb(5, 1, 20)
	a.Halt()
	r.load(t, mustAsm(t, a))
	r.run(t, 1000)
	if r.cpu.Reg(3) != 1234 {
		t.Errorf("r3 = %d", r.cpu.Reg(3))
	}
	if r.cpu.Reg(5) != 0xAB {
		t.Errorf("r5 = %#x", r.cpu.Reg(5))
	}
	if got := r.dspr.Read32(mem.DSPRBase + 16); got != 1234 {
		t.Errorf("dspr content = %d", got)
	}
	// DSPR accesses are counted as scratch accesses.
	if r.cpu.Counters().Get(sim.EvDScratchAccess) != 4 {
		t.Errorf("scratch accesses = %d, want 4", r.cpu.Counters().Get(sim.EvDScratchAccess))
	}
}

func TestStoreWriteThroughToSRAM(t *testing.T) {
	r := newRig(t, rigOpt{icache: true, dcache: true})
	a := isa.NewAsm(mem.FlashBase)
	a.Movw(1, mem.SRAMBase)
	a.Movi(2, 77)
	a.Stw(2, 1, 0)
	a.Ldw(3, 1, 0)
	a.Halt()
	r.load(t, mustAsm(t, a))
	r.run(t, 1000)
	if r.cpu.Reg(3) != 77 {
		t.Errorf("r3 = %d", r.cpu.Reg(3))
	}
	if got := r.sram.Read32(mem.SRAMBase); got != 77 {
		t.Errorf("sram = %d (write-through failed)", got)
	}
}

func TestLoopCountsDown(t *testing.T) {
	r := newRig(t, rigOpt{icache: true})
	a := isa.NewAsm(mem.FlashBase)
	a.Movi(1, 10) // loop counter
	a.Movi(2, 0)  // accumulator
	a.Label("body")
	a.Addi(2, 2, 3)
	a.Loop(1, "body")
	a.Halt()
	r.load(t, mustAsm(t, a))
	r.run(t, 1000)
	if r.cpu.Reg(2) != 30 {
		t.Errorf("r2 = %d, want 30", r.cpu.Reg(2))
	}
	if r.cpu.Reg(1) != 0 {
		t.Errorf("r1 = %d, want 0", r.cpu.Reg(1))
	}
}

func TestCallRet(t *testing.T) {
	r := newRig(t, rigOpt{icache: true})
	a := isa.NewAsm(mem.FlashBase)
	a.Movi(1, 5)
	a.Call("double")
	a.Call("double")
	a.Halt()
	a.Label("double")
	a.Add(1, 1, 1)
	a.Ret()
	r.load(t, mustAsm(t, a))
	r.run(t, 1000)
	if r.cpu.Reg(1) != 20 {
		t.Errorf("r1 = %d, want 20", r.cpu.Reg(1))
	}
}

func TestTripleIssueIPC(t *testing.T) {
	// A loop body of one integer op + one LS op + the LOOP instruction can
	// sustain close to 3 instructions per cycle from the program
	// scratchpad — the "up to 3 within a clock cycle" of the paper.
	r := newRig(t, rigOpt{})
	a := isa.NewAsm(mem.PSPRBase)
	a.Movw(1, mem.DSPRBase) // base pointer
	a.Movi(2, 0)            // value
	a.Movw(3, 1000)         // iterations
	a.Label("body")
	a.Addi(2, 2, 1) // integer pipe
	a.Stw(4, 1, 0)  // LS pipe (independent reg)
	a.Loop(3, "body")
	a.Halt()
	r.load(t, mustAsm(t, a))
	cycles := r.run(t, 100_000)
	instr := r.cpu.Counters().Get(sim.EvInstrExecuted)
	ipc := float64(instr) / float64(cycles)
	if ipc < 2.5 {
		t.Errorf("IPC = %.2f (instr=%d cycles=%d), want >= 2.5", ipc, instr, cycles)
	}
	if ipc > 3.0 {
		t.Errorf("IPC = %.2f exceeds the 3-instruction bound", ipc)
	}
}

func TestICacheWarmup(t *testing.T) {
	r := newRig(t, rigOpt{icache: true, flashWS: 5})
	a := isa.NewAsm(mem.FlashBase)
	a.Movi(1, 50)
	a.Label("body")
	a.Nop()
	a.Nop()
	a.Nop()
	a.Nop()
	a.Loop(1, "body")
	a.Halt()
	r.load(t, mustAsm(t, a))
	r.run(t, 100_000)
	c := r.cpu.Counters()
	acc := c.Get(sim.EvICacheAccess)
	miss := c.Get(sim.EvICacheMiss)
	if miss == 0 {
		t.Fatal("expected cold misses")
	}
	// The loop is tiny: after warm-up everything hits; misses are bounded
	// by the number of distinct lines (program < 2 lines per 32 bytes).
	if miss > 3 {
		t.Errorf("misses = %d, want <= 3 (loop must run from cache)", miss)
	}
	hitRate := float64(c.Get(sim.EvICacheHit)) / float64(acc)
	if hitRate < 0.95 {
		t.Errorf("hit rate = %.3f, want >= 0.95", hitRate)
	}
}

func TestUncachedFetchIsSlow(t *testing.T) {
	mkProg := func(base uint32) *isa.Program {
		a := isa.NewAsm(base)
		a.Movi(1, 200)
		a.Label("body")
		a.Addi(2, 2, 1)
		a.Loop(1, "body")
		a.Halt()
		p, err := a.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	rc := newRig(t, rigOpt{icache: true})
	rc.load(t, mkProg(mem.FlashBase))
	cached := rc.run(t, 1_000_000)

	ru := newRig(t, rigOpt{icache: true})
	ru.load(t, mkProg(mem.FlashUncach))
	uncached := ru.run(t, 1_000_000)

	if uncached <= cached*2 {
		t.Errorf("uncached run %d cycles, cached %d: expected >2x slowdown", uncached, cached)
	}
	if rc.cpu.Counters().Get(sim.EvIFlashAccess) >= ru.cpu.Counters().Get(sim.EvIFlashAccess) {
		t.Error("uncached run must reach the flash more often")
	}
}

func TestBranchPenalties(t *testing.T) {
	// Forward-taken branches are mispredicted (static BTFN) and must cost
	// more than backward-taken ones.
	mk := func(forward bool) uint64 {
		r := newRig(t, rigOpt{})
		a := isa.NewAsm(mem.PSPRBase)
		a.Movi(1, 1000)
		a.Movi(2, 0)
		if forward {
			a.Label("head")
			a.Beq(2, 2, "fwd") // always taken, forward
			a.Nop()
			a.Label("fwd")
			a.Loop(1, "head")
		} else {
			a.Label("head")
			a.Addi(2, 2, 0)
			a.Loop(1, "head") // backward taken, loop pipe
		}
		a.Halt()
		p, err := a.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		r.load(t, p)
		return r.run(t, 1_000_000)
	}
	fwd, bwd := mk(true), mk(false)
	if fwd <= bwd {
		t.Errorf("forward-taken %d cycles vs backward %d: mispredicts must cost more", fwd, bwd)
	}
}

func TestMFCRCycleCounter(t *testing.T) {
	r := newRig(t, rigOpt{icache: true})
	a := isa.NewAsm(mem.FlashBase)
	a.Mfcr(1, isa.CsrCCNT)
	a.Nop()
	a.Nop()
	a.Nop()
	a.Mfcr(2, isa.CsrCCNT)
	a.Sub(3, 2, 1)
	a.Halt()
	r.load(t, mustAsm(t, a))
	r.run(t, 1000)
	if d := r.cpu.Reg(3); d == 0 || d > 20 {
		t.Errorf("cycle delta = %d, want small nonzero", d)
	}
	if r.cpu.Reg(0) != 0 {
		t.Error("r0 unexpectedly written")
	}
}

func TestCoreIDReadOnly(t *testing.T) {
	r := newRig(t, rigOpt{icache: true})
	a := isa.NewAsm(mem.FlashBase)
	a.Movi(1, 99)
	a.Mtcr(isa.CsrCoreID, 1) // must be ignored
	a.Mfcr(2, isa.CsrCoreID)
	a.Halt()
	r.load(t, mustAsm(t, a))
	r.run(t, 1000)
	if r.cpu.Reg(2) != 0 {
		t.Errorf("core id = %d, want 0", r.cpu.Reg(2))
	}
}

func TestDFlashReadCounted(t *testing.T) {
	r := newRig(t, rigOpt{icache: true})
	// Place a constant table in flash, read it.
	r.fl.Load(mem.FlashBase+0x1000, []byte{0x2A, 0, 0, 0})
	a := isa.NewAsm(mem.FlashBase)
	a.Movw(1, mem.FlashBase+0x1000)
	a.Ldw(2, 1, 0)
	a.Halt()
	r.load(t, mustAsm(t, a))
	r.run(t, 1000)
	if r.cpu.Reg(2) != 0x2A {
		t.Errorf("r2 = %d", r.cpu.Reg(2))
	}
	if r.cpu.Counters().Get(sim.EvDFlashRead) != 1 {
		t.Errorf("EvDFlashRead = %d, want 1", r.cpu.Counters().Get(sim.EvDFlashRead))
	}
}

func TestDCacheHitsOnRepeatedLoads(t *testing.T) {
	r := newRig(t, rigOpt{icache: true, dcache: true})
	r.fl.Load(mem.FlashBase+0x2000, []byte{1, 0, 0, 0})
	a := isa.NewAsm(mem.FlashBase)
	a.Movw(1, mem.FlashBase+0x2000)
	a.Movi(3, 20)
	a.Label("body")
	a.Ldw(2, 1, 0)
	a.Loop(3, "body")
	a.Halt()
	r.load(t, mustAsm(t, a))
	r.run(t, 100_000)
	c := r.cpu.Counters()
	if c.Get(sim.EvDCacheMiss) != 1 {
		t.Errorf("d-miss = %d, want 1", c.Get(sim.EvDCacheMiss))
	}
	if c.Get(sim.EvDCacheHit) != 19 {
		t.Errorf("d-hit = %d, want 19", c.Get(sim.EvDCacheHit))
	}
	if c.Get(sim.EvDFlashRead) != 1 {
		t.Errorf("flash reads = %d, want 1 (only the fill)", c.Get(sim.EvDFlashRead))
	}
}

// fakeIRQ delivers one interrupt of priority 5 after being armed.
type fakeIRQ struct {
	pending bool
	vector  uint32
	acks    int
}

func (f *fakeIRQ) PendingIRQ(cur uint32) (uint32, uint32, bool) {
	if f.pending && 5 > cur {
		return 5, f.vector, true
	}
	return 0, 0, false
}
func (f *fakeIRQ) AckIRQ(uint32) { f.pending = false; f.acks++ }

func TestInterruptEntryAndRFE(t *testing.T) {
	r := newRig(t, rigOpt{icache: true})
	a := isa.NewAsm(mem.FlashBase)
	// Handler at a fixed label; main enables interrupts and spins.
	a.Movi(1, 1) // IE bit
	a.Mtcr(isa.CsrICR, 1)
	a.Movi(2, 0)
	a.Label("spin")
	a.Addi(2, 2, 1)
	a.Movw(4, 500)
	a.Blt(2, 4, "spin")
	a.Halt()
	a.Label("handler")
	a.Movi(3, 111)
	a.Rfe()
	p := mustAsm(t, a)
	r.load(t, p)

	irq := &fakeIRQ{}
	for _, s := range p.Syms {
		if s.Name == "handler" {
			irq.vector = s.Addr
		}
	}
	r.cpu.IRQ = irq

	// Fire the interrupt after 50 cycles.
	r.clock.Attach("firer", sim.TickerFunc(func(cy uint64) {
		if cy == 50 {
			irq.pending = true
		}
	}))
	r.run(t, 100_000)
	if r.cpu.Reg(3) != 111 {
		t.Error("handler did not run")
	}
	if r.cpu.Reg(2) < 490 {
		t.Errorf("main loop did not complete: r2=%d", r.cpu.Reg(2))
	}
	if irq.acks != 1 {
		t.Errorf("acks = %d, want 1", irq.acks)
	}
	c := r.cpu.Counters()
	if c.Get(sim.EvInterruptEntry) != 1 || c.Get(sim.EvInterruptExit) != 1 {
		t.Errorf("irq events = %d/%d, want 1/1",
			c.Get(sim.EvInterruptEntry), c.Get(sim.EvInterruptExit))
	}
}

func TestInterruptMaskedWhenDisabled(t *testing.T) {
	r := newRig(t, rigOpt{icache: true})
	a := isa.NewAsm(mem.FlashBase)
	a.Movi(1, 100)
	a.Label("spin")
	a.Loop(1, "spin")
	a.Halt()
	p := mustAsm(t, a)
	r.load(t, p)
	irq := &fakeIRQ{pending: true, vector: mem.FlashBase}
	r.cpu.IRQ = irq
	r.run(t, 10_000)
	if irq.acks != 0 {
		t.Error("interrupt taken while IE=0")
	}
}

func TestRetireLogOrder(t *testing.T) {
	r := newRig(t, rigOpt{icache: true})
	a := isa.NewAsm(mem.FlashBase)
	a.Movi(1, 3)
	a.Label("body")
	a.Loop(1, "body")
	a.Halt()
	r.load(t, mustAsm(t, a))
	r.cpu.TraceEnabled = true

	var log []Retired
	r.clock.Attach("drain", sim.TickerFunc(func(uint64) {
		log = append(log, r.cpu.DrainRetired()...)
	}))
	r.run(t, 1000)

	if len(log) == 0 {
		t.Fatal("no retired instructions")
	}
	var lastCycle uint64
	for i, re := range log {
		if re.Cycle < lastCycle {
			t.Fatalf("retire log out of order at %d", i)
		}
		lastCycle = re.Cycle
	}
	// Last retired must be the HALT.
	if log[len(log)-1].Op != isa.OpHALT {
		t.Errorf("last op = %v, want HALT", log[len(log)-1].Op)
	}
	// LOOP taken twice (counter 3→2→1), then falls through.
	taken := 0
	for _, re := range log {
		if re.Op == isa.OpLOOP && re.Taken {
			taken++
		}
	}
	if taken != 2 {
		t.Errorf("loop taken %d times, want 2", taken)
	}
}

func TestIPCNeverExceedsThree(t *testing.T) {
	r := newRig(t, rigOpt{})
	a := isa.NewAsm(mem.PSPRBase)
	a.Movw(1, mem.DSPRBase)
	a.Movi(3, 500)
	a.Label("body")
	a.Addi(2, 2, 1)
	a.Addi(4, 4, 1) // second int op cannot co-issue (same pipe)
	a.Ldw(5, 1, 0)
	a.Stw(6, 1, 4)
	a.Loop(3, "body")
	a.Halt()
	r.load(t, mustAsm(t, a))
	cycles := r.run(t, 1_000_000)
	instr := r.cpu.Counters().Get(sim.EvInstrExecuted)
	if float64(instr) > 3*float64(cycles) {
		t.Errorf("IPC bound violated: %d instr in %d cycles", instr, cycles)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		r := newRig(t, rigOpt{icache: true, dcache: true, prefetch: true})
		a := isa.NewAsm(mem.FlashBase)
		a.Movw(1, mem.SRAMBase)
		a.Movi(3, 300)
		a.Label("body")
		a.Ldw(2, 1, 0)
		a.Addi(2, 2, 1)
		a.Stw(2, 1, 0)
		a.Loop(3, "body")
		a.Halt()
		r.load(t, mustAsm(t, a))
		cy := r.run(t, 1_000_000)
		return cy, r.cpu.Counters().Get(sim.EvInstrExecuted)
	}
	c1, i1 := run()
	c2, i2 := run()
	if c1 != c2 || i1 != i2 {
		t.Errorf("nondeterministic: (%d,%d) vs (%d,%d)", c1, i1, c2, i2)
	}
}

func TestAccessorsAndIllegalInstr(t *testing.T) {
	r := newRig(t, rigOpt{icache: true})
	a := isa.NewAsm(mem.FlashBase)
	a.Movi(1, 3)
	a.Halt()
	r.load(t, mustAsm(t, a))
	if r.cpu.PC() != mem.FlashBase {
		t.Errorf("PC = %#x", r.cpu.PC())
	}
	r.cpu.SetReg(5, 77)
	if r.cpu.Reg(5) != 77 {
		t.Error("SetReg/Reg wrong")
	}
	if r.cpu.CSRValue(isa.CsrCoreID) != 0 {
		t.Error("CSRValue wrong")
	}
	r.run(t, 1000)

	// Illegal instruction word panics loudly.
	r2 := newRig(t, rigOpt{icache: true})
	r2.fl.Load(mem.FlashBase, []byte{0, 0, 0, 0xFF}) // opcode 0xFF
	r2.cpu.Reset(mem.FlashBase, mem.DSPRBase+0x1000)
	defer func() {
		if recover() == nil {
			t.Error("illegal instruction must panic")
		}
	}()
	r2.clock.Run(10)
}

func TestShadowStackOverflowPanics(t *testing.T) {
	r := newRig(t, rigOpt{icache: true})
	// Handler that re-enables interrupts and never acks progress: each
	// entry nests deeper until the shadow stack overflows.
	a := isa.NewAsm(mem.FlashBase)
	a.Movi(1, 1)
	a.Mtcr(isa.CsrICR, 1)
	a.Label("spin")
	a.J("spin")
	a.Label("isr")
	a.Movi(1, 1)
	a.Mtcr(isa.CsrICR, 1) // re-enable: nest forever
	a.Label("isrspin")
	a.J("isrspin")
	p := mustAsm(t, a)
	r.load(t, p)
	var isr uint32
	for _, s := range p.Syms {
		if s.Name == "isr" {
			isr = s.Addr
		}
	}
	// Interrupt source with ever-increasing priority so each nest preempts.
	prio := uint32(1)
	r.cpu.IRQ = &risingIRQ{vector: isr, prio: &prio}
	defer func() {
		if recover() == nil {
			t.Error("shadow overflow must panic")
		}
	}()
	r.clock.Run(10_000)
}

type risingIRQ struct {
	vector uint32
	prio   *uint32
}

func (f *risingIRQ) PendingIRQ(cur uint32) (uint32, uint32, bool) {
	return cur + 1, f.vector, true
}
func (f *risingIRQ) AckIRQ(uint32) { *f.prio++ }

func TestUncachedSRAMViewAndByteOps(t *testing.T) {
	r := newRig(t, rigOpt{icache: true, dcache: true})
	a := isa.NewAsm(mem.FlashBase)
	a.Movw(1, mem.SRAMUncach+0x40) // uncached view bypasses the D-cache
	a.Movi(2, 0xAB)
	a.Stb(2, 1, 0)
	a.Ldb(3, 1, 0)
	a.Movw(4, 0x1234)
	a.Stw(4, 1, 4)
	a.Ldw(5, 1, 4)
	a.Halt()
	r.load(t, mustAsm(t, a))
	r.run(t, 10_000)
	if r.cpu.Reg(3) != 0xAB || r.cpu.Reg(5) != 0x1234 {
		t.Errorf("r3=%#x r5=%#x", r.cpu.Reg(3), r.cpu.Reg(5))
	}
	// Uncached accesses must not touch the D-cache.
	if got := r.cpu.Counters().Get(sim.EvDCacheAccess); got != 0 {
		t.Errorf("dcache accesses = %d, want 0", got)
	}
	// Content visible through the cached twin address.
	if got := r.sram.Read32(mem.SRAMBase + 0x44); got != 0x1234 {
		t.Errorf("sram readback = %#x", got)
	}
}

func TestMulLatencyStallsDependent(t *testing.T) {
	// A dependent instruction right after MUL must wait an extra cycle
	// versus an independent one.
	mk := func(dependent bool) uint64 {
		r := newRig(t, rigOpt{})
		a := isa.NewAsm(mem.PSPRBase)
		a.Movw(3, 2000)
		a.Label("b")
		a.Mul(1, 2, 2)
		if dependent {
			a.Add(4, 1, 1) // needs the MUL result
		} else {
			a.Add(4, 5, 5) // independent
		}
		a.Loop(3, "b")
		a.Halt()
		p, err := a.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		r.load(t, p)
		return r.run(t, 1_000_000)
	}
	dep, indep := mk(true), mk(false)
	if dep <= indep {
		t.Errorf("dependent (%d cy) must be slower than independent (%d cy)", dep, indep)
	}
}
