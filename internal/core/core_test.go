package core

import (
	"strings"
	"testing"

	"repro/internal/soc"
	"repro/internal/workload"
)

func testFleet() []workload.Spec {
	return []workload.Spec{
		{Name: "flashy", Seed: 11, CodeKB: 32, TableKB: 32, FilterTaps: 8,
			DiagBranches: 8, ADCPeriod: 3000, TimerPeriod: 10000, CANMeanGap: 6000},
		{Name: "compute", Seed: 12, CodeKB: 4, TableKB: 4, FilterTaps: 32,
			DiagBranches: 4, ADCPeriod: 4000, TimerPeriod: 12000, CANMeanGap: 8000,
			TablesInScratch: true},
	}
}

func quickParams() EvalParams {
	return EvalParams{
		Iters:          120,
		Limit:          50_000_000,
		ProfileHorizon: 200_000,
		RegressionTol:  0.995,
	}
}

func TestProfileApp(t *testing.T) {
	ap, err := ProfileApp(soc.TC1797(), testFleet()[0], 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if ap.CPI <= 1.0/3 || ap.CPI > 50 {
		t.Errorf("CPI = %v", ap.CPI)
	}
	if ap.Rates["dflash_read"] <= 0 {
		t.Error("flash-heavy app shows no data flash reads")
	}
	if ap.FlashWS == 0 {
		t.Error("config snapshot missing")
	}
	if s := ap.String(); s == "" {
		t.Error("empty summary")
	}
}

func TestMeasureCyclesEqualWork(t *testing.T) {
	cfg := soc.TC1797()
	spec := testFleet()[0]
	cy1, app, err := MeasureCycles(cfg, spec, 100, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if app.SoC.CPU.Reg(workReg) < 100 {
		t.Error("iteration target not reached")
	}
	cy2, _, err := MeasureCycles(cfg, spec, 100, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if cy1 != cy2 {
		t.Errorf("measurement not reproducible: %d vs %d", cy1, cy2)
	}
	// More work costs more cycles.
	cy3, _, err := MeasureCycles(cfg, spec, 200, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if cy3 <= cy1 {
		t.Errorf("200 iterations (%d cy) not slower than 100 (%d cy)", cy3, cy1)
	}
}

func TestAnalyticalEstimatesDirectionallyCorrect(t *testing.T) {
	ap, err := ProfileApp(soc.TC1797(), testFleet()[0], 200_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range Catalog() {
		est := opt.Estimate(ap)
		switch {
		case opt.Name == "prefetch-off" || opt.Name == "flash-arb-fcfs":
			if est > 1 {
				t.Errorf("%s: ablation estimated as a gain (%.3f)", opt.Name, est)
			}
		case opt.CostSaver:
			if est > 1 {
				t.Errorf("%s: cost saver estimated as a gain (%.3f)", opt.Name, est)
			}
			if est < 0.9 {
				t.Errorf("%s: cost saver loses too much (%.3f)", opt.Name, est)
			}
		default:
			if est < 1 {
				t.Errorf("%s: improvement estimated as a loss (%.3f)", opt.Name, est)
			}
			if est > 3 {
				t.Errorf("%s: estimate implausibly high (%.3f)", opt.Name, est)
			}
		}
	}
}

func TestEvaluateRanksFlashPathFirst(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation is slow")
	}
	ev, err := Evaluate(soc.TC1797(), testFleet(), Catalog(), quickParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Ranking) != len(Catalog()) {
		t.Fatalf("ranking has %d entries", len(ev.Ranking))
	}
	best, ok := ev.Best()
	if !ok {
		t.Fatal("no acceptable option")
	}
	// The paper's claim: the CPU→flash path is the main lever. The top
	// option must touch the flash path (cache, wait states, buffers, or
	// scratchpad that removes flash traffic).
	flashPath := map[string]bool{"icache-2x": true, "dcache-2x": true,
		"flash-ws-1": true, "flash-buffers-2x": true, "dspr-2x": true}
	if !flashPath[best.Option.Name] {
		t.Errorf("best option %q is not on the flash path", best.Option.Name)
	}
	// Ablation controls must be rejected or rank last among accepted.
	for _, r := range ev.Ranking {
		if r.Option.Name == "prefetch-off" && !r.Rejected && r.MeaMean > 1.001 {
			t.Errorf("prefetch-off measured as a gain: %+v", r.MeaMean)
		}
	}
	// Measured means must be broadly consistent with estimates (same
	// direction) for the accepted top option.
	if best.MeaMean < 1 {
		t.Errorf("best option measured as a loss: %v", best.MeaMean)
	}
}

func TestFModelConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("generational run is slow")
	}
	prm := quickParams()
	prm.Iters = 80
	chain, err := FModel(soc.TC1797(), testFleet()[:1], Catalog()[:5], prm, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) < 2 {
		t.Fatalf("no generation produced: %d", len(chain))
	}
	if chain[0].Chosen == nil {
		t.Fatal("generation 0 chose nothing")
	}
	if chain[1].Config.Name == chain[0].Config.Name {
		t.Error("generation name did not evolve")
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean(nil); g != 1 {
		t.Errorf("geomean(nil) = %v", g)
	}
	if g := geomean([]float64{2, 8}); g < 3.99 || g > 4.01 {
		t.Errorf("geomean(2,8) = %v", g)
	}
}

func TestReportMarkdown(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	fleet := testFleet()
	prm := quickParams()
	var profiles []AppProfile
	for _, sp := range fleet {
		ap, err := ProfileApp(soc.TC1797(), sp, prm.ProfileHorizon)
		if err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, ap)
	}
	ev, err := Evaluate(soc.TC1797(), fleet, Catalog()[:4], prm)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	rep := &Report{Title: "test report", Profiles: profiles, Eval: ev}
	if err := rep.WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"# test report", "## Fleet profiles",
		"## Option ranking", "## Recommendation", "flashy", "compute",
		"fetch stalls (flash path)"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestSweepMonotonicOnWaitStates(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	spec := testFleet()[0]
	pts, err := Sweep(FlashWaitStateVariants(soc.TC1797(), 2, 6, 12), spec, 120, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 || pts[0].Speedup != 1 {
		t.Fatalf("points = %+v", pts)
	}
	if !(pts[0].Cycles < pts[1].Cycles && pts[1].Cycles < pts[2].Cycles) {
		t.Errorf("cycles not monotone in wait states: %+v", pts)
	}
	if pts[2].Speedup >= 1 {
		t.Errorf("12 WS must be slower than 2 WS: %+v", pts[2])
	}
}

func TestSweepVariantBuilders(t *testing.T) {
	base := soc.TC1797()
	ics := ICacheSizeVariants(base, 0, 8<<10, 32<<10)
	if len(ics) != 3 || ics[0].Config.ICache != nil || ics[2].Config.ICache.Size != 32<<10 {
		t.Errorf("icache variants wrong: %+v", ics)
	}
	if ics[1].Label != "icache=8K" {
		t.Errorf("label = %q", ics[1].Label)
	}
	srs := SRAMLatencyVariants(base, 1, 4)
	if len(srs) != 2 || srs[1].Config.SRAMLatency != 4 {
		t.Error("sram variants wrong")
	}
	if _, err := Sweep(nil, testFleet()[0], 1, 1); err == nil {
		t.Error("empty sweep must error")
	}
}
