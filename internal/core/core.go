// Package core implements the paper's system performance optimization
// methodology (Sections 4 and 6): statistical application profiles,
// gathered non-intrusively from many customer applications with the
// Emulation Device, feed an analytical model that quantifies the
// performance improvement of candidate SoC architecture options; options
// are then ranked by their performance-gain / cost ratio, under the
// constraint that no use case may regress ("improve on identified or
// expected bottle necks without negative side effects for other possible
// use cases").
//
// Two evaluation paths exist for every option:
//
//   - Analytical: the paper's approach — estimate the speedup from the
//     measured event rates and stall decomposition alone (the future
//     silicon does not exist yet).
//   - Re-simulation: ground truth in this reproduction — apply the option
//     to the SoC configuration and re-run the identical application for
//     the same amount of work.
//
// Comparing the two quantifies how well the analytical methodology
// predicts real gains (experiment E6).
package core

import (
	"fmt"

	"repro/internal/profiling"
	"repro/internal/soc"
)

// AppProfile condenses one application's measured profile plus the
// configuration it was measured on — the per-customer statistical record
// the SoC architect aggregates.
type AppProfile struct {
	App    string
	Cycles uint64
	Instr  uint64

	// CPI is cycles per instruction (the reciprocal of the paper's IPC).
	CPI float64

	// Rates are the per-basis event rates from the profiling session
	// (per instruction unless the parameter is cycle-based).
	Rates map[string]float64

	// Config snapshot relevant to the analytical model.
	FlashWS     uint64
	ICacheBytes uint32
	DCacheBytes uint32
	SRAMLatency uint64
}

// FromProfile condenses a profiling result measured on cfg.
func FromProfile(p *profiling.Profile, cfg soc.Config) AppProfile {
	ap := AppProfile{
		App:    p.App,
		Cycles: p.Cycles,
		Instr:  p.Instr,
		Rates:  make(map[string]float64),
	}
	if p.Instr > 0 {
		ap.CPI = float64(p.Cycles) / float64(p.Instr)
	}
	for name, se := range p.Series {
		ap.Rates[name] = se.Mean()
	}
	ap.FlashWS = cfg.Flash.WaitStates
	if cfg.ICache != nil {
		ap.ICacheBytes = cfg.ICache.Size
	}
	if cfg.DCache != nil {
		ap.DCacheBytes = cfg.DCache.Size
	}
	ap.SRAMLatency = cfg.SRAMLatency
	return ap
}

// rate returns a named rate (0 when the parameter was not measured).
func (ap AppProfile) rate(name string) float64 { return ap.Rates[name] }

// stallFetchPI and stallDataPI convert the per-cycle stall fractions into
// stall cycles per instruction, the unit the CPI stack uses.
func (ap AppProfile) stallFetchPI() float64 { return ap.rate("stall_fetch") * ap.CPI }
func (ap AppProfile) stallDataPI() float64  { return ap.rate("stall_data") * ap.CPI }

// flashMissPenalty is the analytical model's estimate of the cycles one
// flash-reaching access costs beyond a hit (array wait states plus bus and
// transfer overhead).
func (ap AppProfile) flashMissPenalty() float64 { return float64(ap.FlashWS) + 2 }

// speedupFromSavedCPI converts saved CPI cycles into a speedup factor,
// clamped to not promise more than the stall budget allows.
func (ap AppProfile) speedupFromSavedCPI(saved float64) float64 {
	if saved < 0 {
		saved = 0
	}
	// Never claim to remove more than the measured total stall share.
	maxSaved := ap.rate("stall_any") * ap.CPI
	if saved > maxSaved {
		saved = maxSaved
	}
	newCPI := ap.CPI - saved
	if newCPI < 1.0/3 { // the core cannot beat 3 IPC
		newCPI = 1.0 / 3
	}
	if newCPI <= 0 {
		return 1
	}
	return ap.CPI / newCPI
}

// String summarizes the profile.
func (ap AppProfile) String() string {
	return fmt.Sprintf("%s: CPI=%.2f imiss=%.4f dflash=%.4f stallF=%.2f stallD=%.2f",
		ap.App, ap.CPI, ap.rate("icache_miss"), ap.rate("dflash_read"),
		ap.rate("stall_fetch"), ap.rate("stall_data"))
}
