package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/soc"
	"repro/internal/workload"
)

// Variant is one labelled point of a parameter sweep.
type Variant struct {
	Label  string
	Config soc.Config
}

// SweepPoint is the measurement at one variant.
type SweepPoint struct {
	Label   string
	Cycles  uint64
	Speedup float64 // relative to the first variant
}

// Sweep measures the cycles for equal work (iters main-loop iterations of
// spec) at every variant and reports speedups relative to the first —
// the sensitivity-curve primitive behind experiment E7 and the option
// estimators' calibration.
func Sweep(variants []Variant, spec workload.Spec, iters uint32, limit uint64) ([]SweepPoint, error) {
	if len(variants) == 0 {
		return nil, fmt.Errorf("core: empty sweep")
	}
	out := make([]SweepPoint, 0, len(variants))
	var base uint64
	for i, v := range variants {
		cy, _, err := MeasureCycles(v.Config, spec, iters, limit)
		if err != nil {
			return nil, fmt.Errorf("core: sweep %q: %w", v.Label, err)
		}
		if i == 0 {
			base = cy
		}
		out = append(out, SweepPoint{Label: v.Label, Cycles: cy,
			Speedup: float64(base) / float64(cy)})
	}
	return out, nil
}

// FlashWaitStateVariants builds a sweep over flash array wait states.
func FlashWaitStateVariants(base soc.Config, ws ...uint64) []Variant {
	out := make([]Variant, 0, len(ws))
	for _, w := range ws {
		cfg := base
		cfg.Flash.WaitStates = w
		out = append(out, Variant{Label: fmt.Sprintf("flash-ws=%d", w), Config: cfg})
	}
	return out
}

// ICacheSizeVariants builds a sweep over instruction-cache capacities
// (size 0 removes the cache).
func ICacheSizeVariants(base soc.Config, sizes ...uint32) []Variant {
	out := make([]Variant, 0, len(sizes))
	for _, sz := range sizes {
		cfg := base
		if sz == 0 {
			cfg.ICache = nil
			out = append(out, Variant{Label: "icache=off", Config: cfg})
			continue
		}
		var ic cache.Config
		if base.ICache != nil {
			ic = *base.ICache
		} else {
			ic = cache.Config{Name: "icache", LineBytes: 32, Ways: 2}
		}
		ic.Size = sz
		cfg.ICache = &ic
		out = append(out, Variant{Label: fmt.Sprintf("icache=%dK", sz>>10), Config: cfg})
	}
	return out
}

// SRAMLatencyVariants builds a sweep over LMU SRAM latency (the control
// dimension of experiment E7).
func SRAMLatencyVariants(base soc.Config, lats ...uint64) []Variant {
	out := make([]Variant, 0, len(lats))
	for _, l := range lats {
		cfg := base
		cfg.SRAMLatency = l
		out = append(out, Variant{Label: fmt.Sprintf("sram-lat=%d", l), Config: cfg})
	}
	return out
}
