package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/profiling"
	"repro/internal/soc"
	"repro/internal/workload"
)

// WorkIters is the register the generated applications count main-loop
// iterations in (r9); equal work across configurations means equal
// iteration counts, which makes cycle counts comparable.
const workReg = 9

// MeasureCycles builds spec on a SoC with cfg and returns the cycles
// needed to complete iters main-loop iterations (ground-truth speedup
// measurement). It also returns the application for further inspection.
func MeasureCycles(cfg soc.Config, spec workload.Spec, iters uint32, limit uint64) (uint64, *workload.App, error) {
	s := soc.New(cfg, spec.Seed)
	app, err := workload.Build(s, spec)
	if err != nil {
		return 0, nil, err
	}
	cy, ok := s.Clock.RunUntil(func() bool { return s.CPU.Reg(workReg) >= iters }, limit)
	if !ok {
		return 0, nil, fmt.Errorf("core: %s did not reach %d iterations in %d cycles",
			spec.Name, iters, limit)
	}
	return cy, app, nil
}

// ProfileApp measures spec's profile on an ED twin of cfg using the
// standard parameter set.
func ProfileApp(cfg soc.Config, spec workload.Spec, horizon uint64) (AppProfile, error) {
	ed := cfg
	if !ed.ED {
		ed = ed.WithED()
	}
	s := soc.New(ed, spec.Seed)
	app, err := workload.Build(s, spec)
	if err != nil {
		return AppProfile{}, err
	}
	sess := profiling.NewSession(s, profiling.Spec{
		Resolution: 1000,
		Params:     profiling.StandardParams(),
	})
	if err := sess.Run(context.Background(), app, horizon); err != nil {
		return AppProfile{}, err
	}
	p, err := sess.Result(spec.Name)
	if err != nil {
		return AppProfile{}, err
	}
	return FromProfile(p, cfg), nil
}

// AppResult is one option × application measurement.
type AppResult struct {
	App       string
	Estimated float64 // analytical speedup
	Measured  float64 // re-simulated speedup (0 if not re-simulated)
}

// Ranked is the evaluation of one option across the fleet.
type Ranked struct {
	Option  Option
	PerApp  []AppResult
	EstMean float64 // geometric mean of analytical speedups
	MeaMean float64 // geometric mean of measured speedups
	MeaMin  float64 // worst-case measured speedup (regression detector)

	// GainPerArea is the ranking criterion: (mean measured speedup − 1)
	// per area unit — the paper's "performance gain ... / area increase"
	// ratio.
	GainPerArea float64

	// Rejected marks options that regress at least one use case beyond
	// tolerance — the paper's "without negative side effects" filter.
	Rejected bool
}

// Evaluation is the full ranking produced by Evaluate.
type Evaluation struct {
	Base    soc.Config
	Ranking []Ranked
}

// EvalParams tunes the evaluation driver.
type EvalParams struct {
	Iters          uint32  // main-loop iterations per measurement
	Limit          uint64  // cycle budget per run
	ProfileHorizon uint64  // cycles per profiling run
	RegressionTol  float64 // measured speedup below this rejects the option
	CostTol        float64 // tolerated worst-case slowdown for cost savers
	SkipMeasured   bool    // analytical only (fast)
}

// DefaultEvalParams returns a laptop-scale configuration.
func DefaultEvalParams() EvalParams {
	return EvalParams{
		Iters:          300,
		Limit:          50_000_000,
		ProfileHorizon: 400_000,
		RegressionTol:  0.995,
		CostTol:        0.97,
	}
}

func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 1
	}
	sum := 0.0
	for _, v := range vs {
		if v <= 0 {
			v = 1e-9
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}

// Evaluate runs the full methodology: profile every application on the
// base configuration, estimate every option analytically, optionally
// re-simulate for ground truth, and rank by gain/cost.
func Evaluate(base soc.Config, fleet []workload.Spec, opts []Option, prm EvalParams) (*Evaluation, error) {
	// Per-app base measurements.
	profiles := make([]AppProfile, len(fleet))
	baseCycles := make([]uint64, len(fleet))
	for i, spec := range fleet {
		ap, err := ProfileApp(base, spec, prm.ProfileHorizon)
		if err != nil {
			return nil, err
		}
		profiles[i] = ap
		if !prm.SkipMeasured {
			cy, _, err := MeasureCycles(base, spec, prm.Iters, prm.Limit)
			if err != nil {
				return nil, err
			}
			baseCycles[i] = cy
		}
	}

	ev := &Evaluation{Base: base}
	for _, opt := range opts {
		r := Ranked{Option: opt}
		var ests, meas []float64
		r.MeaMin = math.Inf(1)
		for i, spec := range fleet {
			ar := AppResult{App: spec.Name, Estimated: opt.Estimate(profiles[i])}
			ests = append(ests, ar.Estimated)
			if !prm.SkipMeasured {
				mutSpec := spec
				if opt.MutateSpec != nil {
					mutSpec = opt.MutateSpec(spec)
				}
				cy, _, err := MeasureCycles(opt.Mutate(base), mutSpec, prm.Iters, prm.Limit)
				if err != nil {
					return nil, err
				}
				ar.Measured = float64(baseCycles[i]) / float64(cy)
				meas = append(meas, ar.Measured)
				if ar.Measured < r.MeaMin {
					r.MeaMin = ar.Measured
				}
			}
			r.PerApp = append(r.PerApp, ar)
		}
		r.EstMean = geomean(ests)
		mean := r.EstMean
		if len(meas) > 0 {
			r.MeaMean = geomean(meas)
			mean = r.MeaMean
		} else {
			r.MeaMin = 0
		}
		if opt.CostSaver {
			// Area saved per percent of mean performance given up; a
			// cost saver that loses nothing is maximally attractive.
			loss := 1 - mean
			if loss < 0.001 {
				loss = 0.001
			}
			r.GainPerArea = -opt.AreaCost / (100 * loss)
			tol := prm.CostTol
			if tol == 0 {
				tol = 0.97
			}
			r.Rejected = len(meas) > 0 && r.MeaMin < tol
		} else {
			r.GainPerArea = (mean - 1) / opt.AreaCost
			r.Rejected = len(meas) > 0 && r.MeaMin < prm.RegressionTol
		}
		ev.Ranking = append(ev.Ranking, r)
	}

	sort.Slice(ev.Ranking, func(i, j int) bool {
		a, b := ev.Ranking[i], ev.Ranking[j]
		if a.Rejected != b.Rejected {
			return !a.Rejected // accepted options first
		}
		if a.Option.CostSaver != b.Option.CostSaver {
			return !a.Option.CostSaver // performance options first
		}
		return a.GainPerArea > b.GainPerArea
	})
	return ev, nil
}

// Best returns the highest-ranked accepted performance option, or
// ok=false when every option is rejected. Cost savers are never chosen by
// the F-model (they are a separate business decision).
func (ev *Evaluation) Best() (Ranked, bool) {
	for _, r := range ev.Ranking {
		if !r.Rejected && !r.Option.CostSaver && r.GainPerArea > 0 {
			return r, true
		}
	}
	return Ranked{}, false
}

// Generation is one step of the F-model: the paper's evolutionary flow in
// which profiles of generation N guide the architecture of generation N+1.
type Generation struct {
	Config soc.Config
	Chosen *Ranked // option applied to produce the next generation
}

// FModel runs gens generations: profile → rank → adopt the best option.
// It returns the chain of generations (the first entry is the base). When
// an adopted option carries a software adaptation (MutateSpec), the fleet
// adopts it for all following generations — the paper's customers "adapt
// [their software] only for new features".
func FModel(base soc.Config, fleet []workload.Spec, opts []Option, prm EvalParams, gens int) ([]Generation, error) {
	chain := []Generation{{Config: base}}
	cfg := base
	cur := append([]workload.Spec(nil), fleet...)
	for g := 0; g < gens; g++ {
		ev, err := Evaluate(cfg, cur, opts, prm)
		if err != nil {
			return chain, err
		}
		best, ok := ev.Best()
		if !ok {
			break
		}
		cfg = best.Option.Mutate(cfg)
		cfg.Name = fmt.Sprintf("%s+%s", chain[len(chain)-1].Config.Name, best.Option.Name)
		if best.Option.MutateSpec != nil {
			for i := range cur {
				cur[i] = best.Option.MutateSpec(cur[i])
			}
		}
		chosen := best
		chain[len(chain)-1].Chosen = &chosen
		chain = append(chain, Generation{Config: cfg})
	}
	return chain, nil
}
