package core

import (
	"repro/internal/cache"
	"repro/internal/soc"
	"repro/internal/workload"
)

// Option is one candidate SoC architecture improvement: a configuration
// mutation with an area cost and an analytical gain estimator operating on
// measured application profiles.
type Option struct {
	Name string
	Desc string

	// AreaCost is the silicon cost in relative area units (mm²-like).
	// Cost-reduction options carry a negative AreaCost (area saved) and
	// set CostSaver.
	AreaCost float64

	// CostSaver marks options whose purpose is silicon cost reduction;
	// they are ranked by area saved per percent of performance given up,
	// and rejected when any use case loses more than the cost tolerance.
	CostSaver bool

	// Mutate applies the option to a SoC configuration (for the
	// re-simulation path and for building the next generation).
	Mutate func(soc.Config) soc.Config

	// MutateSpec optionally adapts the customer application to exploit
	// the option (the paper's customers "adapt [software] only for new
	// features"); nil leaves the software unchanged.
	MutateSpec func(workload.Spec) workload.Spec

	// Estimate returns the analytically predicted speedup factor (≥ 1)
	// for one application profile.
	Estimate func(AppProfile) float64
}

// Catalog returns the option catalog evaluated in the paper-style ranking
// (experiment E6). Costs are relative area units; the analytical models
// are deliberately simple first-order CPI-stack arguments — exactly the
// kind of estimate an architect can defend from rate measurements alone.
func Catalog() []Option {
	return []Option{
		{
			Name:     "icache-2x",
			Desc:     "double the instruction cache",
			AreaCost: 1.2,
			Mutate: func(c soc.Config) soc.Config {
				if c.ICache == nil {
					c.ICache = &cache.Config{Name: "icache", Size: 8 << 10, LineBytes: 32, Ways: 2}
				} else {
					ic := *c.ICache
					ic.Size *= 2
					c.ICache = &ic
				}
				return c
			},
			// Rule-of-thumb √2 miss reduction for a size doubling; each
			// avoided miss saves the flash penalty.
			Estimate: func(ap AppProfile) float64 {
				saved := ap.rate("icache_miss") * ap.flashMissPenalty() * 0.3
				return ap.speedupFromSavedCPI(saved)
			},
		},
		{
			Name:     "dcache-2x",
			Desc:     "double (or add) the data cache",
			AreaCost: 0.9,
			Mutate: func(c soc.Config) soc.Config {
				if c.DCache == nil {
					c.DCache = &cache.Config{Name: "dcache", Size: 4 << 10, LineBytes: 32, Ways: 2}
				} else {
					dc := *c.DCache
					dc.Size *= 2
					c.DCache = &dc
				}
				return c
			},
			Estimate: func(ap AppProfile) float64 {
				// Half of the data flash reads become hits.
				saved := ap.rate("dflash_read") * ap.flashMissPenalty() * 0.5
				return ap.speedupFromSavedCPI(saved)
			},
		},
		{
			Name:     "flash-ws-1",
			Desc:     "one wait state less on the flash array",
			AreaCost: 2.5,
			Mutate: func(c soc.Config) soc.Config {
				if c.Flash.WaitStates > 1 {
					c.Flash.WaitStates--
				}
				return c
			},
			// Flash-bound stalls shrink proportionally to the array time.
			Estimate: func(ap AppProfile) float64 {
				if ap.FlashWS <= 1 {
					return 1
				}
				frac := 1 / float64(ap.FlashWS)
				saved := (ap.stallFetchPI() + ap.stallDataPI()) * frac * 0.8
				return ap.speedupFromSavedCPI(saved)
			},
		},
		{
			Name:     "flash-buffers-2x",
			Desc:     "double the flash read/prefetch line buffers per port",
			AreaCost: 0.3,
			Mutate: func(c soc.Config) soc.Config {
				c.Flash.CodeBuffers *= 2
				c.Flash.DataBuffers *= 2
				return c
			},
			Estimate: func(ap AppProfile) float64 {
				saved := ap.stallFetchPI()*0.12 + ap.rate("dflash_read")*ap.flashMissPenalty()*0.15
				return ap.speedupFromSavedCPI(saved)
			},
		},
		{
			Name:     "dspr-2x",
			Desc:     "double the data scratchpad (customers remap hot tables)",
			AreaCost: 1.0,
			Mutate: func(c soc.Config) soc.Config {
				c.DSPRSize *= 2
				return c
			},
			MutateSpec: func(sp workload.Spec) workload.Spec {
				sp.TablesInScratch = true
				return sp
			},
			Estimate: func(ap AppProfile) float64 {
				// Table reads move from flash to single-cycle scratchpad.
				saved := ap.rate("dflash_read") * ap.flashMissPenalty() * 0.9
				return ap.speedupFromSavedCPI(saved)
			},
		},
		{
			Name:     "sram-1cycle",
			Desc:     "reduce LMU SRAM latency by one cycle",
			AreaCost: 0.5,
			Mutate: func(c soc.Config) soc.Config {
				if c.SRAMLatency > 0 {
					c.SRAMLatency--
				}
				return c
			},
			Estimate: func(ap AppProfile) float64 {
				return ap.speedupFromSavedCPI(ap.rate("dsram_access") * 1)
			},
		},
		{
			Name:     "prefetch-off",
			Desc:     "remove the code-port sequential prefetcher (ablation control)",
			AreaCost: 0.05,
			Mutate: func(c soc.Config) soc.Config {
				c.Flash.Prefetch = false
				return c
			},
			// The analytical model predicts a loss: negative saved cycles.
			Estimate: func(ap AppProfile) float64 {
				lost := ap.rate("iflash_access") * float64(ap.FlashWS) * 0.3
				newCPI := ap.CPI + lost
				return ap.CPI / newCPI
			},
		},
		{
			Name:      "icache-half",
			Desc:      "halve the instruction cache (cost reduction)",
			AreaCost:  -0.6,
			CostSaver: true,
			Mutate: func(c soc.Config) soc.Config {
				if c.ICache != nil && c.ICache.Size > 4<<10 {
					ic := *c.ICache
					ic.Size /= 2
					c.ICache = &ic
				}
				return c
			},
			Estimate: func(ap AppProfile) float64 {
				lost := ap.rate("icache_miss") * ap.flashMissPenalty() * 0.4
				return ap.CPI / (ap.CPI + lost)
			},
		},
		{
			Name:      "flash-buffers-min",
			Desc:      "single line buffer per flash port (cost reduction)",
			AreaCost:  -0.15,
			CostSaver: true,
			Mutate: func(c soc.Config) soc.Config {
				c.Flash.CodeBuffers = 1
				c.Flash.DataBuffers = 1
				return c
			},
			Estimate: func(ap AppProfile) float64 {
				lost := ap.stallFetchPI() * 0.1
				return ap.CPI / (ap.CPI + lost)
			},
		},
		{
			Name:     "flash-arb-fcfs",
			Desc:     "replace code-priority flash arbitration with FCFS (ablation)",
			AreaCost: 0.05,
			Mutate: func(c soc.Config) soc.Config {
				c.Flash.Policy = 0 // flash.ArbFCFS
				return c
			},
			Estimate: func(ap AppProfile) float64 {
				lost := ap.rate("flash_port_conflict") * 1.5
				return ap.CPI / (ap.CPI + lost)
			},
		},
	}
}
