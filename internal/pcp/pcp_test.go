package pcp

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/irq"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/tricore"
)

type rig struct {
	p      *PCP
	pram   *mem.RAM
	router *irq.Router
	clock  *sim.Clock
}

func newRig(t *testing.T) *rig {
	t.Helper()
	pram := mem.NewRAM("pram", mem.PRAMBase, 32<<10, 1)
	spb := bus.New("spb", 2)
	spb.Map(mem.PRAMBase, pram.Size(), pram)
	router := irq.New()
	peek := func(addr uint32, p []byte) { pram.Read(addr, p) }
	core := tricore.New("pcp", 1,
		tricore.PMI{PSPR: pram, Bus: spb, Master: 0, Peek: peek},
		tricore.DMI{DSPR: pram, Bus: spb, Master: 0, Peek: peek},
		Timing(), nil)
	p := New(core, pram, router)
	clk := sim.NewClock()
	clk.Attach("pcp", p)
	return &rig{p: p, pram: pram, router: router, clock: clk}
}

func loadChannel(t *testing.T, r *rig, base uint32, build func(a *isa.Asm)) uint32 {
	t.Helper()
	a := isa.NewAsm(base)
	build(a)
	prog, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	r.pram.Write(prog.Base, prog.Bytes())
	return prog.Base
}

func TestChannelRunsOnTrigger(t *testing.T) {
	r := newRig(t)
	entry := loadChannel(t, r, mem.PRAMBase+0x1000, func(a *isa.Asm) {
		a.Movw(1, mem.PRAMBase+0x100)
		a.Ldw(2, 1, 0)
		a.Addi(2, 2, 5)
		a.Stw(2, 1, 0)
		a.Rfe()
	})
	srn := r.router.AddSRN("ch0", 3, irq.ToPCP, 0)
	ch := r.p.AddChannel("ch0", srn, entry)

	r.clock.Run(50)
	if r.p.Busy() {
		t.Fatal("PCP busy without trigger")
	}
	r.router.Request(srn)
	r.clock.Run(200)
	if r.p.Busy() {
		t.Fatal("channel did not finish")
	}
	if got := r.pram.Read32(mem.PRAMBase + 0x100); got != 5 {
		t.Errorf("channel result = %d", got)
	}
	if ch.Invocations != 1 {
		t.Errorf("invocations = %d", ch.Invocations)
	}
}

func TestChannelContextPersists(t *testing.T) {
	// Per-channel register contexts survive across invocations (the PCP
	// keeps channel contexts in PRAM).
	r := newRig(t)
	entry := loadChannel(t, r, mem.PRAMBase+0x1000, func(a *isa.Asm) {
		a.Addi(7, 7, 1) // r7 accumulates across invocations
		a.Movw(1, mem.PRAMBase+0x200)
		a.Stw(7, 1, 0)
		a.Rfe()
	})
	srn := r.router.AddSRN("ch0", 3, irq.ToPCP, 0)
	r.p.AddChannel("ch0", srn, entry)
	for i := 0; i < 4; i++ {
		r.router.Request(srn)
		r.clock.Run(200)
	}
	if got := r.pram.Read32(mem.PRAMBase + 0x200); got != 4 {
		t.Errorf("context accumulator = %d, want 4", got)
	}
}

func TestTwoChannelsIndependentContexts(t *testing.T) {
	r := newRig(t)
	e1 := loadChannel(t, r, mem.PRAMBase+0x1000, func(a *isa.Asm) {
		a.Addi(7, 7, 1)
		a.Movw(1, mem.PRAMBase+0x300)
		a.Stw(7, 1, 0)
		a.Rfe()
	})
	e2 := loadChannel(t, r, mem.PRAMBase+0x1800, func(a *isa.Asm) {
		a.Addi(7, 7, 10)
		a.Movw(1, mem.PRAMBase+0x304)
		a.Stw(7, 1, 0)
		a.Rfe()
	})
	s1 := r.router.AddSRN("ch1", 3, irq.ToPCP, 0)
	s2 := r.router.AddSRN("ch2", 5, irq.ToPCP, 0)
	r.p.AddChannel("ch1", s1, e1)
	r.p.AddChannel("ch2", s2, e2)

	for i := 0; i < 3; i++ {
		r.router.Request(s1)
		r.clock.Run(200)
		r.router.Request(s2)
		r.clock.Run(200)
	}
	if got := r.pram.Read32(mem.PRAMBase + 0x300); got != 3 {
		t.Errorf("ch1 acc = %d, want 3", got)
	}
	if got := r.pram.Read32(mem.PRAMBase + 0x304); got != 30 {
		t.Errorf("ch2 acc = %d, want 30", got)
	}
}

func TestPriorityOrderWhenBothPending(t *testing.T) {
	r := newRig(t)
	order := mem.PRAMBase + uint32(0x400)
	mkCh := func(base uint32, tag int32) uint32 {
		return loadChannel(t, r, base, func(a *isa.Asm) {
			a.Movw(1, order)
			a.Ldw(2, 1, 0)
			a.Shli(2, 2, 4)
			a.Ori(2, 2, tag)
			a.Stw(2, 1, 0)
			a.Rfe()
		})
	}
	lo := r.router.AddSRN("lo", 2, irq.ToPCP, 0)
	hi := r.router.AddSRN("hi", 7, irq.ToPCP, 0)
	r.p.AddChannel("lo", lo, mkCh(mem.PRAMBase+0x1000, 1))
	r.p.AddChannel("hi", hi, mkCh(mem.PRAMBase+0x1800, 2))

	r.router.Request(lo)
	r.router.Request(hi)
	r.clock.Run(500)
	// hi (tag 2) must run first: order word = (0<<4|2)<<4|1 = 0x21.
	if got := r.pram.Read32(order); got != 0x21 {
		t.Errorf("order = %#x, want 0x21", got)
	}
}

func TestSingleIssueWidth(t *testing.T) {
	// The PCP core is single-issue: IPC can never exceed 1.
	r := newRig(t)
	entry := loadChannel(t, r, mem.PRAMBase+0x1000, func(a *isa.Asm) {
		a.Movw(3, 500)
		a.Label("body")
		a.Addi(2, 2, 1)
		a.Stw(2, 1, 0) // LS op that could co-issue on a 3-wide core
		a.Loop(3, "body")
		a.Rfe()
	})
	srn := r.router.AddSRN("ch0", 3, irq.ToPCP, 0)
	r.p.AddChannel("ch0", srn, entry)
	// Point r1 somewhere harmless before first run: contexts start 0 →
	// store to PRAMBase+0... give the channel a valid r1 via PRAM init:
	// store targets [r1+0] with r1=0 → unmapped. Instead patch context by
	// running a setup channel... simpler: r1=0 store would go to address
	// 0 and panic; so make the loop store to an address formed in code.
	_ = entry
	r.pram.Write32(mem.PRAMBase+0x500, 0)
	// Rebuild with explicit address.
	entry2 := loadChannel(t, r, mem.PRAMBase+0x2000, func(a *isa.Asm) {
		a.Movw(1, mem.PRAMBase+0x500)
		a.Movw(3, 500)
		a.Label("body")
		a.Addi(2, 2, 1)
		a.Stw(2, 1, 0)
		a.Loop(3, "body")
		a.Rfe()
	})
	srn2 := r.router.AddSRN("ch1", 4, irq.ToPCP, 0)
	r.p.AddChannel("ch1", srn2, entry2)
	r.router.Request(srn2)
	r.clock.Run(20_000)
	c := r.p.Counters()
	instr := c.Get(sim.EvInstrExecuted)
	cycles := c.Get(sim.EvCycle)
	if instr == 0 {
		t.Fatal("channel never ran")
	}
	if float64(instr) > float64(cycles)*1.01 {
		t.Errorf("PCP IPC exceeds 1: %d instr in %d cycles", instr, cycles)
	}
}
