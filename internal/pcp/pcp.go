// Package pcp models the Peripheral Control Processor of the TriCore SoCs:
// a single-issue coprocessor that executes short channel programs from its
// own code/data RAM (PRAM) in response to interrupt requests, offloading
// peripheral handling from the TriCore. The paper names the TriCore/PCP
// software partitioning as one of the degrees of freedom that makes
// customer applications structurally different — the workload generator
// uses this model to vary the HW/SW split.
//
// The PCP reuses the tricore core model configured single-issue (one pipe
// used per cycle) with per-channel register contexts swapped in software
// here, mirroring the real PCP's channel contexts in PRAM.
package pcp

import (
	"fmt"

	"repro/internal/irq"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/tricore"
)

// Channel is one PCP channel: an entry address and a saved register
// context.
type Channel struct {
	Name  string
	Entry uint32
	regs  [isa.NumRegs]uint32

	Invocations uint64
}

// PCP wraps a single-issue core with channel dispatch.
type PCP struct {
	Core   *tricore.CPU
	PRAM   *mem.RAM
	router *irq.Router

	channels map[uint32]*Channel // by SRN priority
	current  *Channel
	switchAt uint64 // context-switch latency window

	// ContextSwitchCycles is the dispatch overhead per channel start.
	ContextSwitchCycles uint64

	counters *sim.Counters
	waker    *sim.Waker
}

// Timing returns the PCP core timing: single-issue, one fetch block per
// cycle, shallow penalties.
func Timing() tricore.Timing {
	t := tricore.DefaultTiming()
	t.IssueWidth = 1
	t.FetchBlocksCycle = 1
	return t
}

// New creates a PCP around core (which must have been built with Timing()
// and a PRAM-backed PMI/DMI). router supplies irq.ToPCP requests.
func New(core *tricore.CPU, pram *mem.RAM, router *irq.Router) *PCP {
	p := &PCP{
		Core:                core,
		PRAM:                pram,
		router:              router,
		channels:            make(map[uint32]*Channel),
		ContextSwitchCycles: 3,
		counters:            core.Counters(),
	}
	// Leave the wake schedule when a channel trigger lands mid-sleep.
	// Waker methods are nil-receiver safe, so this works unattached too.
	router.OnRequest(irq.ToPCP, func() { p.waker.Reschedule(p.waker.Cycle()) })
	return p
}

// NextWake implements sim.Sleeper: an idle PCP with no pending trigger has
// no per-cycle work (its Tick is a pure no-op), so the clock may park it
// until OnRequest reschedules. A dispatched channel keeps it due every
// cycle (context-switch stall cycles are counted ticks, not sleep).
func (p *PCP) NextWake(from uint64) uint64 {
	if p.current == nil && !p.router.HasPending(irq.ToPCP) {
		return sim.NoWake
	}
	return from
}

// BindWake implements sim.WakeBinder.
func (p *PCP) BindWake(w *sim.Waker) { p.waker = w }

// AddChannel binds a channel program entry to the SRN priority that
// triggers it.
func (p *PCP) AddChannel(name string, trigger *irq.SRN, entry uint32) *Channel {
	if trigger.Provider != irq.ToPCP {
		panic(fmt.Sprintf("pcp: trigger SRN %s not routed to PCP", trigger.Name))
	}
	ch := &Channel{Name: name, Entry: entry}
	p.channels[trigger.Prio] = ch
	return ch
}

// Counters exposes the PCP core counter set (the MCDS PCP observation
// block tap).
func (p *PCP) Counters() *sim.Counters { return p.counters }

// Busy reports whether a channel program is executing.
func (p *PCP) Busy() bool { return p.current != nil }

// Tick implements sim.Ticker: dispatch a pending channel when idle,
// otherwise advance the core. A channel program ends with RFE (the core
// halts, having an empty shadow stack).
func (p *PCP) Tick(now uint64) {
	if p.current != nil {
		if p.Core.Halted() {
			// Channel program finished: save context, go idle.
			for i := range p.current.regs {
				p.current.regs[i] = p.Core.Reg(i)
			}
			p.current = nil
		} else if now < p.switchAt {
			// Context-switch latency window.
			p.counters.Inc(sim.EvPCPStall)
			return
		} else {
			p.counters.Inc(sim.EvPCPCycle)
			p.Core.Tick(now)
			return
		}
	}
	srn, ok := p.router.TakePending(irq.ToPCP)
	if !ok {
		return
	}
	ch := p.channels[srn.Prio]
	if ch == nil {
		return // trigger without program: ignore
	}
	ch.Invocations++
	p.current = ch
	p.Core.Reset(ch.Entry, 0)
	for i, v := range ch.regs {
		p.Core.SetReg(i, v)
	}
	p.switchAt = now + p.ContextSwitchCycles
}
