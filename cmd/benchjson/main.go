// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON benchmark report, so CI can archive benchmark runs
// as machine-readable artifacts and later runs can be diffed — and, with
// -compare, diffs two such reports and gates on regressions.
//
// Usage:
//
//	go test -bench=. -benchtime=1x ./... | benchjson -o BENCH.json
//	benchjson -compare [-tol 0.05] old.json new.json
//
// Compare mode matches benchmarks by name, reports the ns/op delta and
// the delta of the simcycles/s throughput metric when present, and exits
// non-zero when any benchmark regressed beyond the tolerance (slower than
// (1+tol)× the old ns/op, or below (1-tol)× the old simcycles/s) or when
// a baseline benchmark is missing from the new report. A final geomean
// line aggregates the per-benchmark ratios and is held to the same
// tolerance, so a fleet of small slowdowns that each slip under the
// per-benchmark gate still fails the run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Result is one parsed benchmark line.
type Result struct {
	Name string  `json:"name"`
	Pkg  string  `json:"pkg,omitempty"`
	Runs uint64  `json:"runs"`
	NsOp float64 `json:"ns_per_op"`
	// Optional -benchmem / custom metrics, keyed by unit (e.g. "B/op").
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the artifact schema.
type Report struct {
	Schema int    `json:"schema_version"`
	GoOS   string `json:"goos,omitempty"`
	GoArch string `json:"goarch,omitempty"`
	// CPU is the bench host's CPU model as reported by the test binary;
	// CPUs is the logical core count of the host converting the report.
	// Together they qualify scaling curves (a flat worker curve on a
	// single-core host is expected, not a regression).
	CPU     string   `json:"cpu,omitempty"`
	CPUs    int      `json:"cpus,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("o", "", "output file (default stdout)")
	compare := flag.Bool("compare", false, "compare two reports: benchjson -compare old.json new.json")
	tol := flag.Float64("tol", 0.05, "fractional regression tolerance for -compare (0.05 = 5%)")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			return fmt.Errorf("-compare needs exactly two arguments: old.json new.json")
		}
		return runCompare(flag.Arg(0), flag.Arg(1), *tol, os.Stdout)
	}

	rep := Report{Schema: 1, CPUs: runtime.NumCPU()}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseBench(line)
			if ok {
				r.Pkg = pkg
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(rep.Results) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&rep)
}

// cyclesMetric is the custom throughput metric the SoC benchmarks report
// (higher is better, unlike ns/op).
const cyclesMetric = "simcycles/s"

// loadReport reads one benchjson artifact from disk.
func loadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("%s: no results", path)
	}
	return &rep, nil
}

// runCompare diffs the new report against the old baseline and returns an
// error (→ non-zero exit) when any benchmark regressed beyond tol or a
// baseline benchmark disappeared. Benchmarks only present in the new
// report are listed but never fail the gate: adding a benchmark must not
// break CI.
func runCompare(oldPath, newPath string, tol float64, w io.Writer) error {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return err
	}

	// Index the new report by name. Names are unique per report in
	// practice (one line per benchmark); when a report does carry
	// duplicates, the last one wins, matching `go test` append order.
	newBy := make(map[string]Result, len(newRep.Results))
	for _, r := range newRep.Results {
		newBy[r.Name] = r
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "benchmark\told ns/op\tnew ns/op\tdelta\t%s\tverdict\n", cyclesMetric)
	var regressions []string
	var nsG, cycG geomean
	for _, o := range oldRep.Results {
		n, ok := newBy[o.Name]
		if !ok {
			fmt.Fprintf(tw, "%s\t%.0f\t-\t-\t-\tMISSING\n", o.Name, o.NsOp)
			regressions = append(regressions, o.Name+" missing from "+newPath)
			continue
		}
		delete(newBy, o.Name)

		nsDelta := n.NsOp/o.NsOp - 1
		nsG.add(n.NsOp / o.NsOp)
		verdict := "ok"
		if nsDelta > tol {
			verdict = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: ns/op %+.1f%% (%.0f -> %.0f, tol %.0f%%)",
					o.Name, 100*nsDelta, o.NsOp, n.NsOp, 100*tol))
		}

		// Throughput metric: compare only when both reports carry it.
		cyc := "-"
		if ov, ook := o.Extra[cyclesMetric]; ook && ov > 0 {
			if nv, nok := n.Extra[cyclesMetric]; nok {
				cd := nv/ov - 1
				cycG.add(nv / ov)
				cyc = fmt.Sprintf("%+.1f%%", 100*cd)
				if cd < -tol {
					verdict = "REGRESSION"
					regressions = append(regressions,
						fmt.Sprintf("%s: %s %+.1f%% (%.0f -> %.0f, tol %.0f%%)",
							o.Name, cyclesMetric, 100*cd, ov, nv, 100*tol))
				}
			}
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%+.1f%%\t%s\t%s\n",
			o.Name, o.NsOp, n.NsOp, 100*nsDelta, cyc, verdict)
	}
	// Benchmarks that exist only in the new report (newly added): note them.
	for _, r := range newRep.Results {
		if _, ok := newBy[r.Name]; ok {
			fmt.Fprintf(tw, "%s\t-\t%.0f\t-\t-\tnew\n", r.Name, r.NsOp)
		}
	}

	// Aggregate verdict: the geomean of per-benchmark ratios, gated at the
	// same tolerance. Catches a spread of small slowdowns that each duck
	// the per-benchmark gate, and (with a negative tolerance) doubles as a
	// suite-wide must-be-faster gate.
	if nsG.n > 0 {
		nsGd := nsG.delta()
		cyc := "-"
		verdict := "ok"
		if nsGd > tol {
			verdict = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("geomean: ns/op %+.1f%% across %d benchmark(s), tol %.0f%%",
					100*nsGd, nsG.n, 100*tol))
		}
		if cycG.n > 0 {
			cycGd := cycG.delta()
			cyc = fmt.Sprintf("%+.1f%%", 100*cycGd)
			if cycGd < -tol {
				verdict = "REGRESSION"
				regressions = append(regressions,
					fmt.Sprintf("geomean: %s %+.1f%% across %d benchmark(s), tol %.0f%%",
						cyclesMetric, 100*cycGd, cycG.n, 100*tol))
			}
		}
		fmt.Fprintf(tw, "geomean(%d)\t\t\t%+.1f%%\t%s\t%s\n", nsG.n, 100*nsGd, cyc, verdict)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "benchjson: regression:", r)
		}
		return fmt.Errorf("%d regression(s) beyond %.0f%% tolerance", len(regressions), 100*tol)
	}
	fmt.Fprintf(w, "no regressions beyond %.0f%% tolerance\n", 100*tol)
	return nil
}

// geomean accumulates the geometric mean of new/old ratios in log space,
// the standard way to average benchmark speedups (arithmetic means
// overweight the slow benchmarks).
type geomean struct {
	sumLog float64
	n      int
}

func (g *geomean) add(ratio float64) {
	if ratio > 0 && !math.IsInf(ratio, 0) {
		g.sumLog += math.Log(ratio)
		g.n++
	}
}

// delta returns the geomean expressed as a fractional delta (0.05 = the
// suite is on (geometric) average 5% above baseline).
func (g *geomean) delta() float64 {
	if g.n == 0 {
		return 0
	}
	return math.Exp(g.sumLog/float64(g.n)) - 1
}

// parseBench parses one "BenchmarkName-8  123  45.6 ns/op [...]" line.
func parseBench(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	runs, err := strconv.ParseUint(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: strings.TrimSuffix(f[0], "-"+cpuSuffix(f[0])), Runs: runs}
	// Value/unit pairs follow: "45.6 ns/op", "16 B/op", "2 allocs/op".
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		if f[i+1] == "ns/op" {
			r.NsOp = v
			continue
		}
		if r.Extra == nil {
			r.Extra = map[string]float64{}
		}
		r.Extra[f[i+1]] = v
	}
	return r, r.NsOp > 0
}

// cpuSuffix returns the trailing GOMAXPROCS decoration ("8" in
// "BenchmarkFoo-8"), or "" when absent.
func cpuSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return ""
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return ""
	}
	return name[i+1:]
}
