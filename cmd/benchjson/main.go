// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON benchmark report, so CI can archive benchmark runs
// as machine-readable artifacts and later runs can be diffed.
//
// Usage:
//
//	go test -bench=. -benchtime=1x ./... | benchjson -o BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name string  `json:"name"`
	Pkg  string  `json:"pkg,omitempty"`
	Runs uint64  `json:"runs"`
	NsOp float64 `json:"ns_per_op"`
	// Optional -benchmem / custom metrics, keyed by unit (e.g. "B/op").
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the artifact schema.
type Report struct {
	Schema int    `json:"schema_version"`
	GoOS   string `json:"goos,omitempty"`
	GoArch string `json:"goarch,omitempty"`
	// CPU is the bench host's CPU model as reported by the test binary;
	// CPUs is the logical core count of the host converting the report.
	// Together they qualify scaling curves (a flat worker curve on a
	// single-core host is expected, not a regression).
	CPU     string   `json:"cpu,omitempty"`
	CPUs    int      `json:"cpus,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	rep := Report{Schema: 1, CPUs: runtime.NumCPU()}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseBench(line)
			if ok {
				r.Pkg = pkg
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(rep.Results) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&rep)
}

// parseBench parses one "BenchmarkName-8  123  45.6 ns/op [...]" line.
func parseBench(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	runs, err := strconv.ParseUint(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: strings.TrimSuffix(f[0], "-"+cpuSuffix(f[0])), Runs: runs}
	// Value/unit pairs follow: "45.6 ns/op", "16 B/op", "2 allocs/op".
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		if f[i+1] == "ns/op" {
			r.NsOp = v
			continue
		}
		if r.Extra == nil {
			r.Extra = map[string]float64{}
		}
		r.Extra[f[i+1]] = v
	}
	return r, r.NsOp > 0
}

// cpuSuffix returns the trailing GOMAXPROCS decoration ("8" in
// "BenchmarkFoo-8"), or "" when absent.
func cpuSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return ""
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return ""
	}
	return name[i+1:]
}
