package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name string, results []Result) string {
	t.Helper()
	path := filepath.Join(dir, name)
	b, err := json.Marshal(&Report{Schema: 1, Results: results})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareClean(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", []Result{
		{Name: "BenchmarkA", NsOp: 100},
		{Name: "BenchmarkSoC", NsOp: 50, Extra: map[string]float64{cyclesMetric: 2e6}},
	})
	now := writeReport(t, dir, "new.json", []Result{
		{Name: "BenchmarkA", NsOp: 102}, // +2%: inside 5% tolerance
		{Name: "BenchmarkSoC", NsOp: 40, Extra: map[string]float64{cyclesMetric: 2.5e6}},
		{Name: "BenchmarkNew", NsOp: 7}, // added benchmarks never fail the gate
	})
	var sb strings.Builder
	if err := runCompare(old, now, 0.05, &sb); err != nil {
		t.Fatalf("clean compare failed: %v\noutput:\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"BenchmarkA", "BenchmarkSoC", "new", "no regressions"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCompareNsOpRegression(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", []Result{{Name: "BenchmarkA", NsOp: 100}})
	now := writeReport(t, dir, "new.json", []Result{{Name: "BenchmarkA", NsOp: 120}})
	var sb strings.Builder
	err := runCompare(old, now, 0.05, &sb)
	if err == nil {
		t.Fatalf("+20%% ns/op passed the 5%% gate:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "REGRESSION") {
		t.Errorf("table does not flag the regression:\n%s", sb.String())
	}
	// A wider tolerance lets the same delta through.
	sb.Reset()
	if err := runCompare(old, now, 0.25, &sb); err != nil {
		t.Fatalf("+20%% ns/op failed the 25%% gate: %v", err)
	}
}

func TestCompareThroughputRegression(t *testing.T) {
	// ns/op improves but the simcycles/s throughput metric collapses —
	// the gate must still fire (throughput is the paper-level number).
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", []Result{
		{Name: "BenchmarkSoC", NsOp: 100, Extra: map[string]float64{cyclesMetric: 2e6}},
	})
	now := writeReport(t, dir, "new.json", []Result{
		{Name: "BenchmarkSoC", NsOp: 90, Extra: map[string]float64{cyclesMetric: 1e6}},
	})
	var sb strings.Builder
	if err := runCompare(old, now, 0.05, &sb); err == nil {
		t.Fatalf("-50%% %s passed the gate:\n%s", cyclesMetric, sb.String())
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", []Result{
		{Name: "BenchmarkA", NsOp: 100},
		{Name: "BenchmarkGone", NsOp: 100},
	})
	now := writeReport(t, dir, "new.json", []Result{{Name: "BenchmarkA", NsOp: 100}})
	var sb strings.Builder
	err := runCompare(old, now, 0.05, &sb)
	if err == nil {
		t.Fatalf("dropped benchmark passed the gate:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "MISSING") {
		t.Errorf("table does not mark the dropped benchmark:\n%s", sb.String())
	}
}

func TestCompareGeomeanLine(t *testing.T) {
	// Two benchmarks at ratios 2.0 and 0.5: per-benchmark one regresses,
	// but here we only check the printed aggregate — geomean(2.0, 0.5) is
	// exactly 1.0, so the line must read +0.0%.
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", []Result{
		{Name: "BenchmarkA", NsOp: 100, Extra: map[string]float64{cyclesMetric: 1e6}},
		{Name: "BenchmarkB", NsOp: 100, Extra: map[string]float64{cyclesMetric: 1e6}},
	})
	now := writeReport(t, dir, "new.json", []Result{
		{Name: "BenchmarkA", NsOp: 200, Extra: map[string]float64{cyclesMetric: 0.5e6}},
		{Name: "BenchmarkB", NsOp: 50, Extra: map[string]float64{cyclesMetric: 2e6}},
	})
	var sb strings.Builder
	// Tolerance wide enough that the per-benchmark +100% passes; only the
	// aggregate line's arithmetic is under test.
	if err := runCompare(old, now, 1.5, &sb); err != nil {
		t.Fatalf("compare failed: %v\n%s", err, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "geomean(2)") {
		t.Errorf("output missing geomean line over 2 benchmarks:\n%s", out)
	}
	line := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "geomean(") {
			line = l
		}
	}
	if c := strings.Count(line, "+0.0%"); c != 2 {
		t.Errorf("geomean of balanced 2x/0.5x ratios must be +0.0%% for both metrics, got %q", line)
	}
}

func TestCompareGeomeanGate(t *testing.T) {
	// Three +4% slowdowns each slip under the 5% per-benchmark gate, but
	// their geomean (+4%) must still trip once it exceeds the tolerance.
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", []Result{
		{Name: "BenchmarkA", NsOp: 100},
		{Name: "BenchmarkB", NsOp: 100},
		{Name: "BenchmarkC", NsOp: 100},
	})
	now := writeReport(t, dir, "new.json", []Result{
		{Name: "BenchmarkA", NsOp: 104},
		{Name: "BenchmarkB", NsOp: 104},
		{Name: "BenchmarkC", NsOp: 104},
	})
	var sb strings.Builder
	if err := runCompare(old, now, 0.05, &sb); err != nil {
		t.Fatalf("+4%% everywhere must pass a 5%% gate: %v\n%s", err, sb.String())
	}
	sb.Reset()
	err := runCompare(old, now, 0.03, &sb)
	if err == nil {
		t.Fatalf("+4%% geomean passed a 3%% gate:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "geomean(3)") || !strings.Contains(sb.String(), "REGRESSION") {
		t.Errorf("geomean line does not flag the aggregate regression:\n%s", sb.String())
	}
}

func TestCompareNegativeToleranceMustBeFaster(t *testing.T) {
	// A negative tolerance turns the gate into a must-be-faster check:
	// -tol -0.2 demands ns/op <= 0.8x (>= 1.25x speedup). Used by CI to
	// hold the chained dispatcher above the plain block interpreter.
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", []Result{
		{Name: "BenchmarkSoCBranchy", NsOp: 100, Extra: map[string]float64{cyclesMetric: 1e6}},
	})
	fast := writeReport(t, dir, "fast.json", []Result{
		{Name: "BenchmarkSoCBranchy", NsOp: 75, Extra: map[string]float64{cyclesMetric: 1.4e6}},
	})
	slow := writeReport(t, dir, "slow.json", []Result{
		{Name: "BenchmarkSoCBranchy", NsOp: 90, Extra: map[string]float64{cyclesMetric: 1.1e6}},
	})
	var sb strings.Builder
	if err := runCompare(old, fast, -0.2, &sb); err != nil {
		t.Fatalf("1.33x speedup failed the >=1.25x gate: %v\n%s", err, sb.String())
	}
	sb.Reset()
	if err := runCompare(old, slow, -0.2, &sb); err == nil {
		t.Fatalf("1.11x speedup passed the >=1.25x gate:\n%s", sb.String())
	}
}

func TestParseThenCompareRoundTrip(t *testing.T) {
	// End-to-end: bench text -> parseBench -> Report JSON -> compare.
	lines := []string{
		"BenchmarkSoCHotLoop-8   120  9500 ns/op  2100000 simcycles/s",
		"BenchmarkEncode-8   100000  85.0 ns/op  0 B/op  0 allocs/op",
	}
	var results []Result
	for _, l := range lines {
		r, ok := parseBench(l)
		if !ok {
			t.Fatalf("parseBench rejected %q", l)
		}
		results = append(results, r)
	}
	if results[0].Extra[cyclesMetric] != 2.1e6 {
		t.Fatalf("custom metric not captured: %+v", results[0])
	}
	dir := t.TempDir()
	path := writeReport(t, dir, "r.json", results)
	var sb strings.Builder
	if err := runCompare(path, path, 0.0, &sb); err != nil {
		t.Fatalf("self-compare at zero tolerance failed: %v\n%s", err, sb.String())
	}
}
