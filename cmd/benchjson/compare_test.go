package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name string, results []Result) string {
	t.Helper()
	path := filepath.Join(dir, name)
	b, err := json.Marshal(&Report{Schema: 1, Results: results})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareClean(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", []Result{
		{Name: "BenchmarkA", NsOp: 100},
		{Name: "BenchmarkSoC", NsOp: 50, Extra: map[string]float64{cyclesMetric: 2e6}},
	})
	now := writeReport(t, dir, "new.json", []Result{
		{Name: "BenchmarkA", NsOp: 102}, // +2%: inside 5% tolerance
		{Name: "BenchmarkSoC", NsOp: 40, Extra: map[string]float64{cyclesMetric: 2.5e6}},
		{Name: "BenchmarkNew", NsOp: 7}, // added benchmarks never fail the gate
	})
	var sb strings.Builder
	if err := runCompare(old, now, 0.05, &sb); err != nil {
		t.Fatalf("clean compare failed: %v\noutput:\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"BenchmarkA", "BenchmarkSoC", "new", "no regressions"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCompareNsOpRegression(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", []Result{{Name: "BenchmarkA", NsOp: 100}})
	now := writeReport(t, dir, "new.json", []Result{{Name: "BenchmarkA", NsOp: 120}})
	var sb strings.Builder
	err := runCompare(old, now, 0.05, &sb)
	if err == nil {
		t.Fatalf("+20%% ns/op passed the 5%% gate:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "REGRESSION") {
		t.Errorf("table does not flag the regression:\n%s", sb.String())
	}
	// A wider tolerance lets the same delta through.
	sb.Reset()
	if err := runCompare(old, now, 0.25, &sb); err != nil {
		t.Fatalf("+20%% ns/op failed the 25%% gate: %v", err)
	}
}

func TestCompareThroughputRegression(t *testing.T) {
	// ns/op improves but the simcycles/s throughput metric collapses —
	// the gate must still fire (throughput is the paper-level number).
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", []Result{
		{Name: "BenchmarkSoC", NsOp: 100, Extra: map[string]float64{cyclesMetric: 2e6}},
	})
	now := writeReport(t, dir, "new.json", []Result{
		{Name: "BenchmarkSoC", NsOp: 90, Extra: map[string]float64{cyclesMetric: 1e6}},
	})
	var sb strings.Builder
	if err := runCompare(old, now, 0.05, &sb); err == nil {
		t.Fatalf("-50%% %s passed the gate:\n%s", cyclesMetric, sb.String())
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", []Result{
		{Name: "BenchmarkA", NsOp: 100},
		{Name: "BenchmarkGone", NsOp: 100},
	})
	now := writeReport(t, dir, "new.json", []Result{{Name: "BenchmarkA", NsOp: 100}})
	var sb strings.Builder
	err := runCompare(old, now, 0.05, &sb)
	if err == nil {
		t.Fatalf("dropped benchmark passed the gate:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "MISSING") {
		t.Errorf("table does not mark the dropped benchmark:\n%s", sb.String())
	}
}

func TestParseThenCompareRoundTrip(t *testing.T) {
	// End-to-end: bench text -> parseBench -> Report JSON -> compare.
	lines := []string{
		"BenchmarkSoCHotLoop-8   120  9500 ns/op  2100000 simcycles/s",
		"BenchmarkEncode-8   100000  85.0 ns/op  0 B/op  0 allocs/op",
	}
	var results []Result
	for _, l := range lines {
		r, ok := parseBench(l)
		if !ok {
			t.Fatalf("parseBench rejected %q", l)
		}
		results = append(results, r)
	}
	if results[0].Extra[cyclesMetric] != 2.1e6 {
		t.Fatalf("custom metric not captured: %+v", results[0])
	}
	dir := t.TempDir()
	path := writeReport(t, dir, "r.json", results)
	var sb strings.Builder
	if err := runCompare(path, path, 0.0, &sb); err != nil {
		t.Fatalf("self-compare at zero tolerance failed: %v\n%s", err, sb.String())
	}
}
