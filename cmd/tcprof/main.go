// Command tcprof runs the Enhanced System Profiling methodology on an
// Emulation Device: all standard parameters are measured dynamically and
// in parallel by the MCDS, drained over the DAP model, and printed as a
// summary plus (optionally) a CSV timeline, a machine-readable run
// report, and a Chrome trace of the pipeline phases.
//
// Usage:
//
//	tcprof [-soc TC1797|TC1767|TC1797DC] [-seed N] [-cycles N] [-res N]
//	       [-mix engine|lean|...] [-csv timeline.csv] [-rawtrace trace.bin]
//	       [-flow] [-faults scenario|k=v,...] [-framed] [-degrade]
//	       [-json report.json] [-trace spans.json] [-metrics :addr]
//	       [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// Interrupting a run (Ctrl-C) cancels the measurement but still drains the
// session: the partial profile of the cycles that did run is reported.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"

	"repro/internal/obs"
	"repro/internal/profiling"
	"repro/internal/runcfg"
	"repro/internal/soc"
	"repro/internal/workload"
)

// joinNames renders a name list for flag help text.
func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tcprof:", err)
		os.Exit(1)
	}
}

func run() error {
	rc := runcfg.Bind(flag.CommandLine, runcfg.Default())
	mix := flag.String("mix", "engine", "workload mix (one of: "+joinNames(workload.MixNames())+")")
	csvPath := flag.String("csv", "", "write the per-window timeline as CSV")
	rawPath := flag.String("rawtrace", "", "write the raw DAP byte stream (decode with tracedump)")
	flow := flag.Bool("flow", false, "additionally record the program flow trace")
	diagnose := flag.Float64("diagnose", 0, "diagnose windows with IPC below this threshold")
	plot := flag.Bool("plot", false, "render each parameter's timeline as a sparkline")
	jsonPath := flag.String("json", "", "write the versioned machine-readable run report (aggregate with tcfleet)")
	tel := runcfg.BindTelemetry(flag.CommandLine)
	hostProf := runcfg.BindProf(flag.CommandLine)
	flag.Parse()

	if err := rc.Validate(); err != nil {
		return err
	}
	stopProf, err := hostProf.Start()
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "tcprof:", err)
		}
	}()
	cfg, err := rc.SoCConfig()
	if err != nil {
		return err
	}
	cfg = cfg.WithED()

	spec, ok := workload.Mix(*mix, rc.Seed)
	if !ok {
		return fmt.Errorf("unknown workload mix %q (have %s)", *mix, joinNames(workload.MixNames()))
	}
	s := soc.New(cfg, rc.Seed)
	app, err := workload.Build(s, spec)
	if err != nil {
		return err
	}

	params := append(profiling.StandardParams(), profiling.PCPParams()...)
	profSpec, err := rc.SessionSpec(params)
	if err != nil {
		return err
	}
	if *jsonPath != "" || tel.MetricsAddr != "" {
		profSpec.Obs = obs.New()
	}
	if tel.TracePath != "" {
		profSpec.Tracer = obs.NewTracer()
	}
	sess := profiling.NewSession(s, profSpec)
	if *flow {
		sess.CPUObs().FlowTrace = true
	}

	if tel.MetricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", profSpec.Obs)
		mux.Handle("/metrics/prom", profSpec.Obs.PromHandler())
		addr, closeTel, err := tel.Serve(mux)
		if err != nil {
			return err
		}
		defer closeTel()
		fmt.Printf("metrics: serving http://%s/metrics (and /metrics/prom)\n", addr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := sess.Run(ctx, app, rc.Cycles); err != nil {
		if !errors.Is(err, context.Canceled) {
			return err
		}
		fmt.Fprintf(os.Stderr, "tcprof: %v — reporting the partial profile\n", err)
	}
	prof, err := sess.Result(spec.Name)
	if err != nil {
		return err
	}

	e := s.EMEM
	fmt.Printf("%s  %d cycles  %d instructions  resolution %d\n",
		cfg.Name, prof.Cycles, prof.Instr, rc.Resolution)
	fmt.Printf("trace: %d bytes emitted, %d messages lost, DAP drained %d bytes\n",
		prof.TraceBytes, prof.MsgsLost, sess.DAP.TotalDrained)
	fmt.Printf("ring: peak %d / %d bytes (%.1f%%), %d overflows\n",
		e.PeakLevel, e.TraceCapacity(),
		100*float64(e.PeakLevel)/float64(e.TraceCapacity()), e.MsgsDropped)
	if inj := sess.Injector; inj != nil {
		fmt.Printf("faults[%s]: %d corrupted, %d truncated, %d dropped, %d stalls (%d cyc), %d bit flips, %d jams (%d cyc)\n",
			inj.Plan.Name, inj.FramesCorrupted, inj.FramesTruncated, inj.FramesDropped,
			inj.Stalls, inj.StallCycles, inj.BitFlips, inj.Jams, inj.JamCycles)
	}
	if st := sess.DAP.Stream(); st != nil {
		fmt.Printf("link: %d delivered, %d lost, %d gaps, %d retries, %d frames abandoned\n",
			st.Delivered, st.AccountedLost(), len(prof.Gaps), sess.DAP.Retries, sess.DAP.FramesAbandoned)
		for i, g := range prof.Gaps {
			if i >= 5 {
				fmt.Printf("  ... %d more gaps\n", len(prof.Gaps)-i)
				break
			}
			end := fmt.Sprintf("%d", g.EndCycle)
			if g.Open() {
				end = "end"
			}
			fmt.Printf("  gap @%d..%s: %d messages, %d frames\n", g.StartCycle, end, g.Msgs, g.Frames)
		}
	}
	if d := sess.Degrader; d != nil {
		fmt.Printf("degrade: %d widenings, %d restores, peak factor %d, %d cycles degraded\n",
			d.Widenings, d.Restores, d.MaxFactorSeen, d.CyclesDegraded)
	}
	hasSuspects := false
	for _, name := range prof.Names() {
		if prof.Series[name].Confidence() < 1 {
			hasSuspects = true
		}
	}
	fmt.Printf("%-22s %10s %10s %10s %8s", "parameter", "mean", "min", "max", "windows")
	if hasSuspects {
		fmt.Printf(" %6s", "conf")
	}
	fmt.Println()
	for _, name := range prof.Names() {
		se := prof.Series[name]
		fmt.Printf("%-22s %10.4f %10.4f %10.4f %8d",
			name, se.Mean(), se.Min(), se.Max(), len(se.Samples))
		if hasSuspects {
			fmt.Printf(" %5.1f%%", 100*se.Confidence())
		}
		if *plot {
			fmt.Printf("  %s", se.Sparkline(48))
		}
		fmt.Println()
	}

	if *diagnose > 0 {
		diags := prof.Diagnose("ipc", *diagnose)
		fmt.Printf("\n%d windows below IPC %.2f; top suspects across them:\n", len(diags), *diagnose)
		for i, sp := range profiling.TopSuspects(diags, 3) {
			if i >= 6 {
				break
			}
			fmt.Printf("  %-22s implicated in %d windows\n", sp.Name, sp.Instr)
		}
		for i, dg := range diags {
			if i >= 3 {
				break
			}
			fmt.Printf("  window @%d (IPC %.3f):", dg.Window.Cycle, dg.Window.Rate())
			for j, f := range dg.Factors {
				if j >= 3 {
					break
				}
				fmt.Printf("  %s", f)
			}
			fmt.Println()
		}
	}

	if *csvPath != "" {
		if err := writeCSV(*csvPath, prof); err != nil {
			return err
		}
		fmt.Printf("timeline written to %s\n", *csvPath)
	}
	if *rawPath != "" {
		if err := os.WriteFile(*rawPath, sess.DAP.Received, 0o644); err != nil {
			return err
		}
		fmt.Printf("raw trace written to %s (%d bytes)\n", *rawPath, len(sess.DAP.Received))
	}
	if *jsonPath != "" {
		if err := writeFile(*jsonPath, sess.RunReport(prof, rc.Seed).WriteJSON); err != nil {
			return err
		}
		fmt.Printf("run report written to %s\n", *jsonPath)
	}
	if tel.TracePath != "" {
		if err := writeFile(tel.TracePath, profSpec.Tracer.WriteChromeTrace); err != nil {
			return err
		}
		fmt.Printf("pipeline trace written to %s\n", tel.TracePath)
	}
	return nil
}

// writeFile creates path and streams write into it, surfacing both write
// and close errors (a full disk must not yield a silent truncated file).
func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func writeCSV(path string, prof *profiling.Profile) error {
	return writeFile(path, func(f io.Writer) error {
		if _, err := fmt.Fprintln(f, "param,cycle,basis,count,rate"); err != nil {
			return err
		}
		for _, name := range prof.Names() {
			for _, smp := range prof.Series[name].Samples {
				if _, err := fmt.Fprintf(f, "%s,%d,%d,%d,%.6f\n",
					name, smp.Cycle, smp.Basis, smp.Count, smp.Rate()); err != nil {
					return err
				}
			}
		}
		return nil
	})
}
