// Command tcprof runs the Enhanced System Profiling methodology on an
// Emulation Device: all standard parameters are measured dynamically and
// in parallel by the MCDS, drained over the DAP model, and printed as a
// summary plus (optionally) a CSV timeline.
//
// Usage:
//
//	tcprof [-soc TC1797|TC1767] [-seed N] [-cycles N] [-res N]
//	       [-csv timeline.csv] [-rawtrace trace.bin] [-flow]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dap"
	"repro/internal/profiling"
	"repro/internal/soc"
	"repro/internal/workload"
)

func main() {
	socName := flag.String("soc", "TC1797", "SoC preset (the ED twin is used)")
	seed := flag.Uint64("seed", 1, "workload seed")
	cycles := flag.Uint64("cycles", 1_000_000, "measurement horizon in CPU cycles")
	res := flag.Uint64("res", 1000, "resolution (basis events per sample window)")
	csvPath := flag.String("csv", "", "write the per-window timeline as CSV")
	rawPath := flag.String("rawtrace", "", "write the raw DAP byte stream (decode with tracedump)")
	flow := flag.Bool("flow", false, "additionally record the program flow trace")
	diagnose := flag.Float64("diagnose", 0, "diagnose windows with IPC below this threshold")
	plot := flag.Bool("plot", false, "render each parameter's timeline as a sparkline")
	flag.Parse()

	var cfg soc.Config
	switch *socName {
	case "TC1797":
		cfg = soc.TC1797()
	case "TC1767":
		cfg = soc.TC1767()
	default:
		fmt.Fprintf(os.Stderr, "unknown SoC %q\n", *socName)
		os.Exit(1)
	}
	cfg = cfg.WithED()

	spec := workload.Spec{
		Name: "cli", Seed: *seed, CodeKB: 24, TableKB: 32, FilterTaps: 16,
		DiagBranches: 12, ADCPeriod: 2500, TimerPeriod: 9000, CANMeanGap: 5000,
		EEPROMEmul: true,
	}
	s := soc.New(cfg, *seed)
	app, err := workload.Build(s, spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	params := append(profiling.StandardParams(), profiling.PCPParams()...)
	dapCfg := dap.DefaultConfig(cfg.CPUFreqMHz)
	sess := profiling.NewSession(s, profiling.Spec{
		Resolution: *res, Params: params, DAP: &dapCfg,
	})
	if *flow {
		sess.CPUObs().FlowTrace = true
	}

	app.RunFor(*cycles)
	prof, err := sess.Result(spec.Name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("%s  %d cycles  %d instructions  resolution %d\n",
		cfg.Name, prof.Cycles, prof.Instr, *res)
	fmt.Printf("trace: %d bytes emitted, %d messages lost, DAP drained %d bytes\n",
		prof.TraceBytes, prof.MsgsLost, sess.DAP.TotalDrained)
	fmt.Printf("%-22s %10s %10s %10s %8s\n", "parameter", "mean", "min", "max", "windows")
	for _, name := range prof.Names() {
		se := prof.Series[name]
		fmt.Printf("%-22s %10.4f %10.4f %10.4f %8d",
			name, se.Mean(), se.Min(), se.Max(), len(se.Samples))
		if *plot {
			fmt.Printf("  %s", se.Sparkline(48))
		}
		fmt.Println()
	}

	if *diagnose > 0 {
		diags := prof.Diagnose("ipc", *diagnose)
		fmt.Printf("\n%d windows below IPC %.2f; top suspects across them:\n", len(diags), *diagnose)
		for i, sp := range profiling.TopSuspects(diags, 3) {
			if i >= 6 {
				break
			}
			fmt.Printf("  %-22s implicated in %d windows\n", sp.Name, sp.Instr)
		}
		for i, dg := range diags {
			if i >= 3 {
				break
			}
			fmt.Printf("  window @%d (IPC %.3f):", dg.Window.Cycle, dg.Window.Rate())
			for j, f := range dg.Factors {
				if j >= 3 {
					break
				}
				fmt.Printf("  %s", f)
			}
			fmt.Println()
		}
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintln(f, "param,cycle,basis,count,rate")
		for _, name := range prof.Names() {
			for _, smp := range prof.Series[name].Samples {
				fmt.Fprintf(f, "%s,%d,%d,%d,%.6f\n", name, smp.Cycle, smp.Basis, smp.Count, smp.Rate())
			}
		}
		f.Close()
		fmt.Printf("timeline written to %s\n", *csvPath)
	}
	if *rawPath != "" {
		if err := os.WriteFile(*rawPath, sess.DAP.Received, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("raw trace written to %s (%d bytes)\n", *rawPath, len(sess.DAP.Received))
	}
}
