// Command tracedump decodes a raw MCDS trace byte stream (as written by
// tcprof -rawtrace) into human-readable messages and prints per-source
// statistics, including the reconstructed instruction count of
// flow-traced sources.
//
// With -image and -base, the reconstructed instruction stream of source 0
// is additionally disassembled against the program image (as written by
// tcasm -o).
//
// Usage:
//
//	tracedump [-max N] [-image prog.bin -base 0x80000000] [-disasm N] trace.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/isa"
	"repro/internal/mcds"
	"repro/internal/tmsg"
	"repro/internal/vcd"
)

func main() {
	maxMsgs := flag.Int("max", 50, "messages to print (0 = none, -1 = all)")
	imagePath := flag.String("image", "", "program image for disassembly")
	imageBase := flag.Uint64("base", 0x8000_0000, "load address of the image")
	disasmN := flag.Int("disasm", 24, "reconstructed instructions to disassemble")
	vcdPath := flag.String("vcd", "", "export the stream as a VCD waveform (GTKWave etc.)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracedump [-max N] trace.bin")
		os.Exit(2)
	}
	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var msgs []tmsg.Msg
	if n := tmsg.FrameLen(raw); n > 0 && n <= len(raw) && tmsg.ValidFrame(raw[:n]) {
		// A framed stream (tcprof -framed / -faults): decode through the
		// resynchronizing stream decoder and report the loss accounting.
		sd := tmsg.NewStreamDecoder(true)
		msgs = sd.Feed(raw)
		fmt.Printf("%d bytes (framed), %d messages delivered, %d skipped, %d lost, %d gaps\n",
			len(raw), sd.Delivered, sd.Skipped, sd.Lost, len(sd.Gaps))
	} else {
		var dec tmsg.Decoder
		var consumed int
		msgs, consumed, err = dec.DecodeAll(raw)
		if err != nil {
			fmt.Fprintf(os.Stderr, "decode error at byte %d: %v\n", consumed, err)
			os.Exit(1)
		}
		fmt.Printf("%d bytes, %d messages (%d trailing bytes incomplete)\n",
			len(raw), len(msgs), len(raw)-consumed)
	}

	kinds := map[tmsg.Kind]int{}
	srcs := map[uint8]int{}
	var lost uint64
	for i := range msgs {
		m := &msgs[i]
		kinds[m.Kind]++
		srcs[m.Src]++
		if m.Kind == tmsg.KindOverflow {
			lost += m.Lost
		}
		if *maxMsgs < 0 || i < *maxMsgs {
			printMsg(m)
		}
	}
	fmt.Println("---")
	for k := tmsg.Kind(0); k <= tmsg.KindOverflow; k++ {
		if kinds[k] > 0 {
			fmt.Printf("  %-9s %d\n", k, kinds[k])
		}
	}
	for src, n := range srcs {
		pcs := mcds.Reconstruct(msgs, src)
		fmt.Printf("  source %d: %d messages", src, n)
		if len(pcs) > 0 {
			fmt.Printf(", %d instructions reconstructed", len(pcs))
		}
		fmt.Println()
	}
	if lost > 0 {
		fmt.Printf("  %d messages lost to buffer overflow\n", lost)
	}

	if *vcdPath != "" {
		f, err := os.Create(*vcdPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		changes, err := vcd.ExportTrace(f, msgs)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("VCD written to %s (%d value changes)\n", *vcdPath, changes)
	}

	if *imagePath != "" {
		image, err := os.ReadFile(*imagePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		pcs := mcds.Reconstruct(msgs, 0)
		fmt.Printf("--- disassembly of the first %d reconstructed instructions (source 0)\n", *disasmN)
		base := uint32(*imageBase)
		for i, pc := range pcs {
			if i >= *disasmN {
				break
			}
			off := pc - base
			if int(off)+4 > len(image) {
				fmt.Printf("  %08x:  <outside image>\n", pc)
				continue
			}
			w := uint32(image[off]) | uint32(image[off+1])<<8 |
				uint32(image[off+2])<<16 | uint32(image[off+3])<<24
			fmt.Printf("  %08x:  %08x  %s\n", pc, w, isa.Decode(w))
		}
	}
}

func printMsg(m *tmsg.Msg) {
	switch m.Kind {
	case tmsg.KindSync:
		fmt.Printf("[%10d] src%d sync     pc=%#08x\n", m.Cycle, m.Src, m.PC)
	case tmsg.KindFlow:
		fmt.Printf("[%10d] src%d flow     +%d instr -> %#08x\n", m.Cycle, m.Src, m.ICount, m.PC)
	case tmsg.KindData:
		dir := "rd"
		if m.Write {
			dir = "wr"
		}
		fmt.Printf("[%10d] src%d data %s  %#08x = %#x\n", m.Cycle, m.Src, dir, m.Addr, m.Data)
	case tmsg.KindRate:
		fmt.Printf("[%10d] src%d rate     ctr%d %d/%d\n", m.Cycle, m.Src, m.CounterID, m.Count, m.Basis)
	case tmsg.KindTrigger:
		fmt.Printf("[%10d] src%d trigger  id=%d\n", m.Cycle, m.Src, m.TriggerID)
	case tmsg.KindOverflow:
		fmt.Printf("[%10d] ---- overflow %d messages lost\n", m.Cycle, m.Lost)
	}
}
