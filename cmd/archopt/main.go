// Command archopt runs the paper's architecture optimization methodology:
// a fleet of synthetic customer applications is profiled on the current
// generation, every catalog option is estimated analytically and verified
// by re-simulation, and the options are ranked by performance-gain / area
// ratio. With -fmodel N it additionally drives N generations of the
// F-model loop.
//
// Usage:
//
//	archopt [-fleet N] [-seed N] [-iters N] [-analytical] [-fmodel N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/soc"
	"repro/internal/workload"
)

func main() {
	fleetN := flag.Int("fleet", 6, "number of customer applications")
	seed := flag.Uint64("seed", 77, "fleet seed")
	iters := flag.Uint("iters", 300, "main-loop iterations per measurement")
	analytical := flag.Bool("analytical", false, "skip re-simulation (estimates only)")
	fmodel := flag.Int("fmodel", 0, "run N F-model generations after the ranking")
	report := flag.String("report", "", "write a markdown architect report to this file")
	flag.Parse()

	fleet := workload.Fleet(*fleetN, *seed)
	prm := core.DefaultEvalParams()
	prm.Iters = uint32(*iters)
	prm.SkipMeasured = *analytical

	fmt.Printf("profiling %d customer applications on %s ...\n", len(fleet), soc.TC1797().Name)
	ev, err := core.Evaluate(soc.TC1797(), fleet, core.Catalog(), prm)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("%-18s %6s %9s %9s %9s %10s  %s\n",
		"option", "area", "est gain", "meas gain", "min gain", "gain/area", "verdict")
	for _, r := range ev.Ranking {
		verdict := "accepted"
		if r.Rejected {
			verdict = "REJECTED (regression)"
		}
		fmt.Printf("%-18s %6.2f %9.3f %9.3f %9.3f %10.4f  %s\n",
			r.Option.Name, r.Option.AreaCost, r.EstMean, r.MeaMean, r.MeaMin,
			r.GainPerArea, verdict)
	}
	if best, ok := ev.Best(); ok {
		fmt.Printf("\nrecommended for the next generation: %s — %s\n",
			best.Option.Name, best.Option.Desc)
	}

	if *report != "" {
		profiles := make([]core.AppProfile, 0, len(fleet))
		for _, sp := range fleet {
			ap, err := core.ProfileApp(soc.TC1797(), sp, prm.ProfileHorizon)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			profiles = append(profiles, ap)
		}
		f, err := os.Create(*report)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rep := &core.Report{Title: "Next-generation architecture assessment",
			Profiles: profiles, Eval: ev}
		if err := rep.WriteMarkdown(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("report written to %s\n", *report)
	}

	if *fmodel > 0 {
		fmt.Printf("\nF-model loop (%d generations):\n", *fmodel)
		chain, err := core.FModel(soc.TC1797(), fleet, core.Catalog(), prm, *fmodel)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for i, g := range chain {
			fmt.Printf("  gen %d: %s", i, g.Config.Name)
			if g.Chosen != nil {
				fmt.Printf("  -> adopt %s (measured gain %.3f)",
					g.Chosen.Option.Name, g.Chosen.MeaMean)
			}
			fmt.Println()
		}
	}
}
