// Command experiments regenerates every table of the reproduction's
// evaluation (experiments E1–E8, F1, and the A1–A4 ablations in
// DESIGN.md / EXPERIMENTS.md).
//
// Usage:
//
//	experiments [-quick] [-only E3,E4] [-soc TC1797|TC1767|TC1797DC] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/runcfg"
	"repro/internal/soc"
)

func main() {
	quick := flag.Bool("quick", false, "smaller fleets and shorter runs")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	asJSON := flag.Bool("json", false, "emit JSON objects instead of text tables")
	// The base run configuration is shared with tcprof/tcsim/campaigns;
	// experiments fix their own horizons, so only -soc and -seed are bound.
	base := runcfg.Default()
	base.Seed = 2024
	flag.StringVar(&base.SoC, "soc", base.SoC,
		"base SoC preset ("+strings.Join(soc.PresetNames(), "|")+")")
	flag.Uint64Var(&base.Seed, "seed", base.Seed, "reference workload seed")
	flag.Parse()

	if err := experiments.SetBase(base); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	type exp struct {
		id  string
		run func() *experiments.Table
	}
	all := []exp{
		{"E1", experiments.E1RateSemantics},
		{"E2", experiments.E2IPCTimeline},
		{"E3", experiments.E3Bandwidth},
		{"E4", experiments.E4Cascade},
		{"E5", experiments.E5Intrusiveness},
		{"E6", func() *experiments.Table { return experiments.E6OptionRanking(*quick) }},
		{"E7", experiments.E7FlashLever},
		{"E8", experiments.E8CycleTrace},
		{"E9", experiments.E9Multicore},
		{"E10", experiments.E10FaultRecovery},
		{"F1", func() *experiments.Table { return experiments.F1FModel(*quick) }},
		{"A1", experiments.A1RateBasis},
		{"A2", experiments.A2Compression},
		{"A3", experiments.A3FlashArbitration},
		{"A4", experiments.A4TraceBufferSizing},
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}
	ran := 0
	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		tb := e.run()
		if *asJSON {
			if err := tb.RenderJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else {
			tb.Render(os.Stdout)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %q\n", *only)
		os.Exit(1)
	}
}
