// Command tcfleet aggregates machine-readable run reports (written by
// tcprof -json) into the fleet-level statistical profile the paper's
// methodology targets: per-parameter distributions across many runs,
// confidence-weighted so lossy runs influence the result less, with
// statistical outliers flagged for the engineer.
//
// Usage:
//
//	tcfleet [-json] [-out fleet.json] report-dir|report.json ...
//
// Each argument is a run-report file or a directory whose *.json files
// are ingested. Reports with an unknown or newer schema are skipped with
// a warning.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/profiling"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tcfleet:", err)
		os.Exit(1)
	}
}

func run() error {
	jsonOut := flag.Bool("json", false, "print the fleet profile as JSON instead of tables")
	outPath := flag.String("out", "", "additionally write the fleet profile JSON to this file")
	flag.Parse()
	if flag.NArg() == 0 {
		return fmt.Errorf("no inputs; usage: tcfleet [-json] [-out fleet.json] report-dir|report.json ...")
	}

	paths, err := collect(flag.Args())
	if err != nil {
		return err
	}
	var ids []string
	var reports []*profiling.RunReport
	skipped := 0
	for _, p := range paths {
		r, err := profiling.LoadRunReport(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcfleet: skipping %v\n", err)
			skipped++
			continue
		}
		ids = append(ids, filepath.Base(p))
		reports = append(reports, r)
	}
	if len(reports) == 0 {
		return fmt.Errorf("no valid run reports among %d file(s)", len(paths))
	}

	fp, err := profiling.Aggregate(ids, reports)
	if err != nil {
		return err
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		if err := writeJSON(f, fp); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *jsonOut {
		return writeJSON(os.Stdout, fp)
	}
	print(fp, skipped)
	return nil
}

// collect expands directory arguments into their *.json files.
func collect(args []string) ([]string, error) {
	var out []string
	for _, a := range args {
		st, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if !st.IsDir() {
			out = append(out, a)
			continue
		}
		ents, err := os.ReadDir(a)
		if err != nil {
			return nil, err
		}
		n := 0
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
				out = append(out, filepath.Join(a, e.Name()))
				n++
			}
		}
		if n == 0 {
			fmt.Fprintf(os.Stderr, "tcfleet: %s contains no *.json reports\n", a)
		}
	}
	sort.Strings(out)
	return out, nil
}

func writeJSON(w io.Writer, fp *profiling.FleetProfile) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fp)
}

func print(fp *profiling.FleetProfile, skipped int) {
	var cycles uint64
	for _, r := range fp.Runs {
		cycles += r.Cycles
	}
	fmt.Printf("fleet: %d runs", len(fp.Runs))
	if skipped > 0 {
		fmt.Printf(" (%d skipped)", skipped)
	}
	fmt.Printf(", %d cycles total\n\n", cycles)

	fmt.Printf("%-28s %-10s %-12s %10s %8s\n", "run", "soc", "faults", "conf", "weight")
	for _, r := range fp.Runs {
		faults := r.FaultPlan
		if faults == "" {
			faults = "-"
		}
		fmt.Printf("%-28s %-10s %-12s %9.1f%% %8.3f\n",
			r.ID, r.SoC, faults, 100*r.Confidence, r.Weight)
	}

	fmt.Printf("\n%-22s %5s %10s %10s %10s %10s %10s %10s\n",
		"parameter", "runs", "wmean", "mean", "p50", "p95", "min", "max")
	for _, p := range fp.Params {
		fmt.Printf("%-22s %5d %10.4f %10.4f %10.4f %10.4f %10.4f %10.4f",
			p.Param, p.Runs, p.WeightedMean, p.Mean, p.P50, p.P95, p.Min, p.Max)
		if len(p.Outliers) > 0 {
			fmt.Printf("  OUTLIERS: %s", strings.Join(p.Outliers, ","))
		}
		fmt.Println()
	}
}
