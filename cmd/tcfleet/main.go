// Command tcfleet operates on fleets of profiling runs: it aggregates
// machine-readable run reports (written by tcprof -json) into the
// fleet-level statistical profile the paper's methodology targets, and
// it executes whole campaigns — a declarative matrix of virtual
// customers expanded into parallel profiling sessions whose reports
// stream straight into the aggregator.
//
// Usage:
//
//	tcfleet aggregate [-json] [-out fleet.json] report-dir|report.json ...
//	tcfleet run [-spec campaign.json] [-socs a,b] [-mixes a,b] [-faults a,b]
//	            [-res n,m] [-seeds N] [-seed N] [-cycles N] [-framed] [-degrade]
//	            [-workers N] [-celltimeout D] [-retries N] [-journal dir]
//	            [-shards N] [-hbtimeout D] [-shardretries N] [-allow-partial]
//	            [-json] [-out fleet.json] [-outdir reports/]
//	            [-trace spans.json] [-metrics :addr] [-events events.jsonl]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	tcfleet run -resume dir [-workers N] [-celltimeout D] [-retries N] [flags]
//	tcfleet run -agents host:port,... -keyfile key [-shards N] [flags]
//	tcfleet agent -listen host:port -keyfile key [-workers N] [-metrics :addr]
//
// Interrupting a campaign (Ctrl-C) stops the
// in-flight sessions and flushes the partial aggregate; with -journal,
// the interrupted campaign is resumable: "tcfleet run -resume dir"
// reloads the matrix from the journal manifest, skips every
// journaled-complete cell, re-runs failed and missing ones, and
// produces an aggregate byte-identical to an uninterrupted run.
//
// With -shards N the campaign runs across N child worker processes
// ("tcfleet shard-worker", an internal subcommand), each executing a
// deterministic slice of the expanded matrix and streaming
// CRC-32-trailed reports back to the supervising parent, which detects
// hangs via heartbeats, respawns crashed workers with backoff (re-running
// only their non-journaled cells), and produces the same byte-identical
// aggregate as an in-process run.
//
// With -agents the shard workers run on remote hosts instead: each
// shard dials a long-lived "tcfleet agent" daemon from the pool,
// authenticates with an HMAC challenge-response over the shared
// -keyfile, uploads its assignment, and streams the same protocol back
// over the socket — supervision (hang detection, respawn with backoff,
// failover to another agent) and the byte-identical aggregate carry
// over unchanged. -shards defaults to the agent count.
//
// With -metrics ADDR the run serves its live telemetry over HTTP for
// its duration: /metrics (JSON snapshot), /metrics/prom (Prometheus
// text exposition), /status (the campaign scoreboard: per-cell state,
// per-shard liveness, throughput and ETA), and /events (a Server-Sent
// Events stream of the flight recorder). ":0" binds an ephemeral port;
// the actual address is printed to stderr. -events persists the flight
// recorder as JSONL at exit; -trace writes a Chrome trace that, for
// sharded runs, stitches every worker's spans into the supervisor's
// timeline (one pid row per shard).
//
// A campaign that finishes with permanently-failed cells exits nonzero
// so CI and scripts cannot mistake a partial aggregate for a complete
// one; -allow-partial restores the old exit-0 behavior.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/campaign"
	"repro/internal/campaign/shard"
	"repro/internal/obs"
	"repro/internal/profiling"
	"repro/internal/runcfg"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tcfleet:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("no arguments; usage:\n" +
			"  tcfleet aggregate [-json] [-out fleet.json] report-dir|report.json ...\n" +
			"  tcfleet run [-spec campaign.json] [flags]")
	}
	switch args[0] {
	case "aggregate":
		return runAggregate(args[1:])
	case "run":
		return runCampaign(args[1:])
	case "agent":
		return runAgent(args[1:])
	case "shard-worker":
		// Internal: the child-process half of "tcfleet run -shards N".
		// Protocol on stdio; never invoked by hand.
		os.Exit(shard.WorkerMain(args[1:], os.Stdin, os.Stdout, os.Stderr))
		return nil
	case "-h", "-help", "--help", "help":
		flag.Usage()
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q (use \"aggregate\", \"run\", or \"agent\")", args[0])
	}
}

// runAgent is the remote-worker daemon: it listens for authenticated
// supervisor connections and runs one shard-worker assignment per
// connection, in-process. Pair with "tcfleet run -agents ... -keyfile
// ..." on the supervising host; both sides must share the key file.
func runAgent(args []string) error {
	fs := flag.NewFlagSet("tcfleet agent", flag.ExitOnError)
	listen := fs.String("listen", "", "address to accept supervisor connections on (host:port; \":0\" picks an ephemeral port, printed to stderr)")
	keyFile := fs.String("keyfile", "", "shared-key file authenticating supervisors (required; same file as the supervisor's -keyfile)")
	workers := fs.Int("workers", 0, "cap the worker pool of any single assignment (0 = trust the supervisor's spec)")
	metricsAddr := fs.String("metrics", "", "serve agent telemetry over HTTP at this address (/metrics, /metrics/prom)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	if *listen == "" {
		return fmt.Errorf("agent: -listen is required")
	}
	if *keyFile == "" {
		return fmt.Errorf("agent: -keyfile is required (unauthenticated agents would run anyone's workload)")
	}
	key, err := shard.LoadKey(*keyFile)
	if err != nil {
		return err
	}

	reg := obs.New()
	tel := &runcfg.Telemetry{MetricsAddr: *metricsAddr}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg)
	mux.Handle("/metrics/prom", reg.PromHandler())
	telAddr, closeTel, err := tel.Serve(mux)
	if err != nil {
		return err
	}
	defer closeTel()
	if telAddr != "" {
		fmt.Fprintf(os.Stderr, "tcfleet: agent telemetry at http://%s  (/metrics /metrics/prom)\n", telAddr)
	}

	a := &shard.Agent{
		Key:     key,
		Workers: *workers,
		Obs:     reg,
		Stderr:  os.Stderr,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "tcfleet: "+format+"\n", args...)
		},
	}
	// SIGINT/SIGTERM is graceful shutdown: stop accepting, cancel live
	// workers (they drain like a SIGTERM'd exec worker), then exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return a.ListenAndServe(ctx, *listen, func(addr net.Addr) {
		fmt.Fprintf(os.Stderr, "tcfleet: agent listening on %s\n", addr)
	})
}

func runAggregate(args []string) error {
	fs := flag.NewFlagSet("tcfleet aggregate", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "print the fleet profile as JSON instead of tables")
	outPath := fs.String("out", "", "additionally write the fleet profile JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no inputs; usage: tcfleet aggregate [-json] [-out fleet.json] report-dir|report.json ...")
	}

	paths, err := collect(fs.Args())
	if err != nil {
		return err
	}
	acc := profiling.NewAccumulator()
	skipped := 0
	for _, p := range paths {
		// Checked load: a truncated, malformed, or checksum-inconsistent
		// report is skipped with a warning, never aborts the aggregation.
		r, err := profiling.LoadRunReportChecked(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcfleet: skipping %v\n", err)
			skipped++
			continue
		}
		acc.Add(filepath.Base(p), r)
	}
	if acc.Len() == 0 {
		return fmt.Errorf("no valid run reports among %d file(s)", len(paths))
	}
	fp, err := acc.Finalize()
	if err != nil {
		return err
	}
	return emit(fp, *jsonOut, *outPath, func() { printProfile(fp, skipped) })
}

// uint64List parses a comma-separated list of unsigned integers.
func uint64List(s string) ([]uint64, error) {
	if s == "" {
		return nil, nil
	}
	var out []uint64
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(tok), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", tok, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

func runCampaign(args []string) error {
	fs := flag.NewFlagSet("tcfleet run", flag.ExitOnError)
	specPath := fs.String("spec", "", "campaign spec file (JSON matrix); flags set explicitly override it")
	name := fs.String("name", "", "campaign name")
	socs := fs.String("socs", "", "comma-separated SoC presets (default TC1797)")
	mixes := fs.String("mixes", "", "comma-separated workload mixes (have: "+strings.Join(workload.MixNames(), ", ")+")")
	faults := fs.String("faults", "", "comma-separated fault scenarios or k=v plans (default clean)")
	res := fs.String("res", "", "comma-separated resolutions (default 1000)")
	seeds := fs.Int("seeds", 0, "seed variants per configuration (default 1)")
	seed := fs.Uint64("seed", 0, "campaign master seed (cell seeds derive from it)")
	cycles := fs.Uint64("cycles", 0, "simulation horizon per cell (default 1000000)")
	framed := fs.Bool("framed", false, "harden the trace path on every cell")
	degrade := fs.Bool("degrade", false, "enable graceful degradation on every cell")
	workers := fs.Int("workers", 0, "worker pool size (default GOMAXPROCS)")
	sup := runcfg.BindSupervise(fs)
	shardCfg := runcfg.BindShard(fs)
	allowPartial := fs.Bool("allow-partial", false,
		"exit 0 even when cells failed permanently (default: a partial aggregate exits nonzero)")
	journalDir := fs.String("journal", "", "write-ahead journal directory (makes the campaign resumable after a crash or Ctrl-C)")
	resumeDir := fs.String("resume", "", "resume an interrupted journaled campaign from this directory (matrix comes from the journal)")
	jsonOut := fs.Bool("json", false, "print the fleet profile as JSON instead of tables")
	outPath := fs.String("out", "", "write the fleet profile JSON to this file")
	outDir := fs.String("outdir", "", "write each cell's run report into this directory as it completes")
	tel := runcfg.BindTelemetry(fs)
	runcfg.BindTelemetryEvents(fs, tel)
	hostProf := runcfg.BindProf(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q (campaign cells come from -spec or dimension flags)", fs.Args())
	}

	if err := sup.Validate(); err != nil {
		return err
	}
	if err := shardCfg.Validate(); err != nil {
		return err
	}
	stopProf, err := hostProf.Start()
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "tcfleet:", err)
		}
	}()

	var m campaign.Matrix
	if *specPath != "" {
		var err error
		if m, err = campaign.Load(*specPath); err != nil {
			return err
		}
	}
	var listErr error
	var matrixFlags []string
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "spec", "name", "socs", "mixes", "faults", "res", "seeds", "seed",
			"cycles", "framed", "degrade":
			matrixFlags = append(matrixFlags, "-"+f.Name)
		}
		switch f.Name {
		case "name":
			m.Name = *name
		case "socs":
			m.SoCs = splitList(*socs)
		case "mixes":
			m.Mixes = splitList(*mixes)
		case "faults":
			m.Faults = splitList(*faults)
		case "res":
			if v, err := uint64List(*res); err != nil {
				listErr = fmt.Errorf("-res: %w", err)
			} else {
				m.Resolutions = v
			}
		case "seeds":
			m.Seeds = *seeds
		case "seed":
			m.Seed = *seed
		case "cycles":
			m.Cycles = *cycles
		case "framed":
			m.Framed = *framed
		case "degrade":
			m.Degrade = *degrade
		}
	})
	if listErr != nil {
		return listErr
	}

	opt := campaign.Options{
		Workers:     *workers,
		Obs:         obs.New(),
		CellTimeout: sup.CellTimeout,
		Retries:     sup.Retries,
	}
	switch {
	case *resumeDir != "":
		// The journal manifest is the authority on what the campaign was;
		// re-specifying the matrix alongside -resume could only disagree.
		if len(matrixFlags) > 0 {
			return fmt.Errorf("-resume rebuilds the matrix from the journal; drop %s",
				strings.Join(matrixFlags, " "))
		}
		if *journalDir != "" {
			return fmt.Errorf("-resume and -journal are mutually exclusive (resume continues journaling in place)")
		}
		var err error
		if m, err = campaign.LoadJournalMatrix(*resumeDir); err != nil {
			return err
		}
		opt.JournalDir = *resumeDir
		opt.Resume = true
	case *journalDir != "":
		opt.JournalDir = *journalDir
	}
	if tel.TracePath != "" {
		opt.Tracer = obs.NewTracer()
	}
	// The scoreboard and flight recorder exist exactly when someone can
	// observe them: a live endpoint or an -events file. They observe the
	// campaign from the side — a telemetry-off run executes the same code
	// through nil receivers.
	var events *obs.EventLog
	if tel.MetricsAddr != "" || tel.EventsPath != "" {
		events = obs.NewEventLog(obs.DefaultEventLogSize)
		opt.Status = campaign.NewStatus(events)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		dir := *outDir
		opt.OnReport = func(c campaign.Cell, r *profiling.RunReport) {
			path := filepath.Join(dir, c.ID+".json")
			if err := writeFile(path, r.WriteJSON); err != nil {
				fmt.Fprintf(os.Stderr, "tcfleet: %v\n", err)
			}
		}
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", opt.Obs)
	mux.Handle("/metrics/prom", opt.Obs.PromHandler())
	mux.Handle("/status", opt.Status)
	mux.Handle("/events", events.SSEHandler(0))
	telAddr, closeTel, err := tel.Serve(mux)
	if err != nil {
		return err
	}
	defer closeTel()
	if telAddr != "" {
		// The actual bound address, not the flag value: with ":0" this
		// line is how scripts learn the ephemeral port.
		fmt.Fprintf(os.Stderr, "tcfleet: telemetry at http://%s  (/metrics /metrics/prom /status /events)\n", telAddr)
	}

	fmt.Fprintf(os.Stderr, "tcfleet: campaign %q: %d cells\n", m.Name, m.Size())
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Resolve the shard plan before spawning anything. Remote agents
	// imply sharding (default: one shard per agent), and a shard count
	// beyond the cell count is clamped — an empty worker is pure
	// supervision overhead, so spawn exactly as many as there is work.
	agentPool := splitList(shardCfg.Agents)
	shards := shardCfg.Shards
	if len(agentPool) > 0 && shards == 0 {
		shards = len(agentPool)
	}
	if n := m.Size(); shards > n && n > 0 {
		fmt.Fprintf(os.Stderr, "tcfleet: clamping -shards %d to %d (one shard per cell; empty workers would only add supervision overhead)\n", shards, n)
		shards = n
	}

	var res2 *campaign.Result
	if shards > 1 || len(agentPool) > 0 {
		var transport shard.Transport
		logf := func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "tcfleet: "+format+"\n", args...)
		}
		if len(agentPool) > 0 {
			key, err := shard.LoadKey(shardCfg.KeyFile)
			if err != nil {
				return err
			}
			transport = &shard.TCPTransport{
				Agents:           agentPool,
				Key:              key,
				HeartbeatTimeout: shardCfg.HeartbeatTimeout,
				Obs:              opt.Obs,
				Status:           opt.Status,
				Logf:             logf,
			}
		} else {
			exe, err := os.Executable()
			if err != nil {
				return fmt.Errorf("locating own binary for shard workers: %w", err)
			}
			transport = &shard.ExecTransport{Argv: []string{exe, "shard-worker"}, Stderr: os.Stderr}
		}
		var err error
		res2, err = shard.Run(ctx, m, shard.Options{
			Campaign:         opt,
			Shards:           shards,
			Transport:        transport,
			HeartbeatEvery:   shardCfg.HeartbeatEvery,
			HeartbeatTimeout: shardCfg.HeartbeatTimeout,
			Retries:          shardCfg.ShardRetries,
			DrainTimeout:     shardCfg.DrainTimeout,
			Logf:             logf,
		})
		if err != nil {
			return err
		}
	} else {
		var err error
		res2, err = campaign.Run(ctx, m, opt)
		if err != nil {
			return err
		}
	}

	for _, w := range res2.Warnings {
		fmt.Fprintf(os.Stderr, "tcfleet: journal: %s\n", w)
	}
	for _, ce := range res2.Errors {
		fmt.Fprintf(os.Stderr, "tcfleet: cell failed: %v\n", ce)
	}
	status := ""
	if res2.Resumed > 0 {
		status += fmt.Sprintf(" (%d resumed from journal)", res2.Resumed)
	}
	if res2.Retried > 0 {
		status += fmt.Sprintf(" (%d retries)", res2.Retried)
	}
	if res2.Restarts > 0 {
		status += fmt.Sprintf(" (%d shard respawns)", res2.Restarts)
	}
	if res2.Torn > 0 || res2.Dup > 0 {
		status += fmt.Sprintf(" (%d torn, %d dup records)", res2.Torn, res2.Dup)
	}
	if res2.Canceled {
		status = " (canceled — partial aggregate"
		if opt.JournalDir != "" {
			status += fmt.Sprintf("; resume with: tcfleet run -resume %s", opt.JournalDir)
		}
		status += ")"
	}
	fmt.Fprintf(os.Stderr,
		"tcfleet: %d/%d sessions completed, %d failed, %d workers, %.2fs wall, %.1fM simulated cycles%s\n",
		res2.Completed, res2.Cells, res2.Failed, res2.Workers,
		res2.Wall.Seconds(), float64(res2.SimCycles)/1e6, status)
	if res2.Profile == nil {
		return fmt.Errorf("no sessions completed")
	}
	if tel.TracePath != "" {
		if err := writeFile(tel.TracePath, opt.Tracer.WriteChromeTrace); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "tcfleet: campaign trace written to %s\n", tel.TracePath)
	}
	if tel.EventsPath != "" {
		if err := writeFile(tel.EventsPath, events.WriteJSONL); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "tcfleet: campaign events written to %s\n", tel.EventsPath)
	}
	if err := emit(res2.Profile, *jsonOut, *outPath, func() { printProfile(res2.Profile, 0) }); err != nil {
		return err
	}
	if res2.Failed > 0 && !*allowPartial {
		// A partial aggregate must not masquerade as success: scripts and
		// CI gate on the exit code. The profile above is still complete
		// for the cells that did run; -allow-partial accepts it.
		return fmt.Errorf("%d cell(s) failed permanently; aggregate is partial (use -allow-partial to accept it)", res2.Failed)
	}
	return nil
}

// emit writes the profile to -out when requested and renders it to
// stdout, as JSON or as tables.
func emit(fp *profiling.FleetProfile, jsonOut bool, outPath string, table func()) error {
	if outPath != "" {
		if err := writeFile(outPath, fp.WriteJSON); err != nil {
			return err
		}
	}
	if jsonOut {
		return fp.WriteJSON(os.Stdout)
	}
	table()
	return nil
}

// writeFile streams write into path atomically (temp file + rename via
// campaign.WriteFileAtomic): a crash mid-write can no longer leave a
// truncated report or fleet profile behind.
func writeFile(path string, write func(w io.Writer) error) error {
	return campaign.WriteFileAtomic(path, write)
}

// collect expands directory arguments into their *.json files.
func collect(args []string) ([]string, error) {
	var out []string
	for _, a := range args {
		st, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if !st.IsDir() {
			out = append(out, a)
			continue
		}
		ents, err := os.ReadDir(a)
		if err != nil {
			return nil, err
		}
		n := 0
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
				out = append(out, filepath.Join(a, e.Name()))
				n++
			}
		}
		if n == 0 {
			fmt.Fprintf(os.Stderr, "tcfleet: %s contains no *.json reports\n", a)
		}
	}
	sort.Strings(out)
	return out, nil
}

func printProfile(fp *profiling.FleetProfile, skipped int) {
	var cycles uint64
	for _, r := range fp.Runs {
		cycles += r.Cycles
	}
	fmt.Printf("fleet: %d runs", len(fp.Runs))
	if skipped > 0 {
		fmt.Printf(" (%d skipped)", skipped)
	}
	fmt.Printf(", %d cycles total\n\n", cycles)

	fmt.Printf("%-40s %-10s %-12s %10s %8s\n", "run", "soc", "faults", "conf", "weight")
	for _, r := range fp.Runs {
		faults := r.FaultPlan
		if faults == "" {
			faults = "-"
		}
		fmt.Printf("%-40s %-10s %-12s %9.1f%% %8.3f\n",
			r.ID, r.SoC, faults, 100*r.Confidence, r.Weight)
	}

	fmt.Printf("\n%-22s %5s %10s %10s %10s %10s %10s %10s\n",
		"parameter", "runs", "wmean", "mean", "p50", "p95", "min", "max")
	for _, p := range fp.Params {
		fmt.Printf("%-22s %5d %10.4f %10.4f %10.4f %10.4f %10.4f %10.4f",
			p.Param, p.Runs, p.WeightedMean, p.Mean, p.P50, p.P95, p.Min, p.Max)
		if len(p.Outliers) > 0 {
			fmt.Printf("  OUTLIERS: %s", strings.Join(p.Outliers, ","))
		}
		fmt.Println()
	}
}
