package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/profiling"
)

// testReport builds a minimal valid run report for aggregation tests.
func testReport(seed uint64) *profiling.RunReport {
	return &profiling.RunReport{
		Schema: profiling.ReportSchemaVersion,
		App:    "t", SoC: "TC1797", Seed: seed,
		Cycles: 1000, Resolution: 100, Confidence: 1,
		Params: map[string]profiling.ParamStats{
			"ipc": {Mean: 0.5, Min: 0.1, Max: 0.9, Windows: 10, Confidence: 1},
		},
	}
}

// TestAggregateSkipsCorruptReports: a truncated, garbage, or
// checksum-inconsistent report in a directory is skipped with a
// warning — never aborts the aggregation of the valid reports around
// it.
func TestAggregateSkipsCorruptReports(t *testing.T) {
	dir := t.TempDir()
	for i, r := range []*profiling.RunReport{testReport(1), testReport(2)} {
		path := filepath.Join(dir, "good"+string(rune('a'+i))+".json")
		if err := writeFile(path, r.WriteJSONSummed); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "garbage.json"), []byte("{\"schema_ver"), 0o644); err != nil {
		t.Fatal(err)
	}
	good, _, err := testReport(3).EncodeSummed()
	if err != nil {
		t.Fatal(err)
	}
	good[len(good)/3] ^= 0x04 // valid trailer, corrupted body
	if err := os.WriteFile(filepath.Join(dir, "badcrc.json"), good, 0o644); err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(t.TempDir(), "fleet.json")
	if err := runAggregate([]string{"-out", out, dir}); err != nil {
		t.Fatalf("aggregate aborted on corrupt inputs: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var fp profiling.FleetProfile
	if err := json.Unmarshal(data, &fp); err != nil {
		t.Fatal(err)
	}
	if len(fp.Runs) != 2 {
		t.Errorf("aggregated %d runs, want the 2 valid ones", len(fp.Runs))
	}

	// All-corrupt input is an error, not a silent empty profile.
	bad := t.TempDir()
	if err := os.WriteFile(filepath.Join(bad, "junk.json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runAggregate([]string{bad}); err == nil {
		t.Error("aggregation of only-corrupt inputs succeeded")
	}
}

// TestBareDirectoryIsNotASubcommand pins the removal of the historical
// bare form ("tcfleet report-dir"): a path argument is an unknown
// subcommand, and the error points at the two real spellings.
func TestBareDirectoryIsNotASubcommand(t *testing.T) {
	err := run([]string{t.TempDir()})
	if err == nil {
		t.Fatal("bare directory argument was accepted")
	}
	for _, want := range []string{"unknown subcommand", "aggregate", "run"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}
