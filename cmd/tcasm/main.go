// Command tcasm assembles text assembly for the simulated TriCore-like
// core and optionally executes it on a SoC preset, printing the final
// register state — a minimal development flow for writing custom test
// programs against the simulator.
//
// Usage:
//
//	tcasm [-base 0x80000000] [-o image.bin] [-run] [-cycles N] [-dump] prog.s
//
// With -run the program is loaded into the address its base selects
// (flash, program scratchpad, or PCP RAM) on a TC1797 and executed until
// HALT or the cycle limit.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/isa"
	"repro/internal/mcds"
	"repro/internal/sim"
	"repro/internal/soc"
)

func main() {
	base := flag.Uint64("base", 0x8000_0000, "load address when the source has no .org")
	out := flag.String("o", "", "write the little-endian image to this file")
	run := flag.Bool("run", false, "execute on a TC1797 and print the result")
	cycles := flag.Uint64("cycles", 10_000_000, "cycle limit for -run")
	dump := flag.Bool("dump", false, "print the assembled disassembly")
	tracePath := flag.String("trace", "", "with -run: record the MCDS flow+data trace to this file")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tcasm [flags] prog.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	p, err := isa.ParseAsm(string(src), uint32(*base))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("assembled %d instructions at %#08x (%d symbols)\n",
		len(p.Words), p.Base, len(p.Syms))

	if *dump {
		for i, w := range p.Words {
			addr := p.Base + uint32(i)*4
			if sym := symAt(p, addr); sym != "" {
				fmt.Printf("%s:\n", sym)
			}
			fmt.Printf("  %08x:  %08x  %s\n", addr, w, isa.Decode(w))
		}
	}
	if *out != "" {
		if err := os.WriteFile(*out, p.Bytes(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("image written to %s (%d bytes)\n", *out, p.Size())
	}
	if !*run {
		return
	}

	cfg := soc.TC1797()
	if *tracePath != "" {
		cfg = cfg.WithED()
	}
	s := soc.New(cfg, 1)
	var m *mcds.MCDS
	if *tracePath != "" {
		m = mcds.New("mcds", s.EMEM)
		obs := m.AddCore(s.CPU, 0)
		obs.FlowTrace = true
		obs.DataTrace = true
		s.Clock.Attach("mcds", m)
	}
	s.LoadProgram(p)
	s.ResetCPU(p.Base)
	cy, halted := s.RunUntilHalt(*cycles)
	if m != nil {
		s.Clock.Step()
	}
	if !halted {
		fmt.Fprintf(os.Stderr, "did not halt within %d cycles (pc=%#08x)\n", *cycles, s.CPU.PC())
		os.Exit(1)
	}
	c := s.CPU.Counters()
	fmt.Printf("halted after %d cycles, %d instructions (IPC %.3f)\n",
		cy, c.Get(sim.EvInstrExecuted),
		float64(c.Get(sim.EvInstrExecuted))/float64(c.Get(sim.EvCycle)))
	for r := 0; r < isa.NumRegs; r += 4 {
		fmt.Printf("  r%-2d=%08x  r%-2d=%08x  r%-2d=%08x  r%-2d=%08x\n",
			r, s.CPU.Reg(r), r+1, s.CPU.Reg(r+1), r+2, s.CPU.Reg(r+2), r+3, s.CPU.Reg(r+3))
	}
	if *tracePath != "" {
		raw := s.EMEM.Drain(s.EMEM.Level())
		if err := os.WriteFile(*tracePath, raw, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s (%d bytes, %d messages lost)\n",
			*tracePath, len(raw), m.MsgsLost)
	}
}

func symAt(p *isa.Program, addr uint32) string {
	for _, s := range p.Syms {
		if s.Addr == addr {
			return s.Name
		}
	}
	return ""
}
