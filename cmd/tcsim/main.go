// Command tcsim runs a synthetic customer application on a simulated SoC
// preset and prints a performance summary from the ground-truth hardware
// counters (no MCDS involved — compare with tcprof, which measures the
// same quantities through the Emulation Device).
//
// Usage:
//
//	tcsim [-soc TC1797|TC1767] [-seed N] [-cycles N] [-code KB] [-tables KB]
//	      [-taps N] [-scratch] [-pcp] [-dma] [-eeprom] [-instrumented]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/runcfg"
	"repro/internal/sim"
	"repro/internal/soc"
	"repro/internal/workload"
)

func main() {
	def := runcfg.Default()
	def.Cycles = 2_000_000
	rc := runcfg.BindBase(flag.CommandLine, def)
	codeKB := flag.Int("code", 24, "code footprint in KB")
	tableKB := flag.Int("tables", 32, "lookup table size in KB")
	taps := flag.Int("taps", 16, "filter length")
	scratch := flag.Bool("scratch", false, "map tables to the data scratchpad")
	onPCP := flag.Bool("pcp", false, "handle CAN on the PCP")
	viaDMA := flag.Bool("dma", false, "handle CAN via DMA")
	eeprom := flag.Bool("eeprom", false, "enable EEPROM emulation")
	instrumented := flag.Bool("instrumented", false, "inject software profiling instrumentation")
	flag.Parse()

	if err := rc.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg, err := rc.SoCConfig()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	spec := workload.Spec{
		Name: "cli", Seed: rc.Seed, CodeKB: *codeKB, TableKB: *tableKB,
		FilterTaps: *taps, DiagBranches: 12,
		ADCPeriod: 2500, TimerPeriod: 9000, CANMeanGap: 5000,
		TablesInScratch: *scratch, CANOnPCP: *onPCP, CANViaDMA: *viaDMA,
		EEPROMEmul: *eeprom, Instrumented: *instrumented,
	}
	s := soc.New(cfg, rc.Seed)
	app, err := workload.Build(s, spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	app.RunFor(rc.Cycles)

	c := s.CPU.Counters()
	instr := c.Get(sim.EvInstrExecuted)
	cy := c.Get(sim.EvCycle)
	fmt.Printf("SoC %s  seed %d  horizon %d cycles\n", cfg.Name, rc.Seed, rc.Cycles)
	fmt.Printf("  program size        %d bytes (%d symbols)\n", app.Prog.Size(), len(app.Prog.Syms))
	fmt.Printf("  instructions        %d\n", instr)
	fmt.Printf("  IPC                 %.3f\n", float64(instr)/float64(cy))
	rate := func(e sim.Event) float64 { return float64(c.Get(e)) / float64(instr) }
	frac := func(e sim.Event) float64 { return float64(c.Get(e)) / float64(cy) }
	fmt.Printf("  icache hit rate     %.2f%% (%d misses)\n",
		100*float64(c.Get(sim.EvICacheHit))/float64(maxU(c.Get(sim.EvICacheAccess), 1)),
		c.Get(sim.EvICacheMiss))
	fmt.Printf("  data flash reads    %.4f /instr\n", rate(sim.EvDFlashRead))
	fmt.Printf("  scratch accesses    %.4f /instr\n", rate(sim.EvDScratchAccess))
	fmt.Printf("  SRAM accesses       %.4f /instr\n", rate(sim.EvDSRAMAccess))
	fmt.Printf("  periph accesses     %.4f /instr\n", rate(sim.EvDPeriphAccess))
	fmt.Printf("  stall cycles        %.1f%% (fetch %.1f%%, data %.1f%%)\n",
		100*frac(sim.EvStallCycle), 100*frac(sim.EvStallFetch), 100*frac(sim.EvStallData))
	fmt.Printf("  interrupts          %d (%.1f per 10k cycles)\n",
		c.Get(sim.EvInterruptEntry), 1e4*frac(sim.EvInterruptEntry))
	fmt.Printf("  flash port conflicts %d\n", s.Flash.Counters().Get(sim.EvFlashPortConflict))
	fmt.Printf("  DLMB contention     %d waits\n", s.DLMB.Counters().Get(sim.EvBusContention))
	if s.PCP != nil {
		pc := s.PCP.Counters()
		fmt.Printf("  PCP instructions    %d\n", pc.Get(sim.EvInstrExecuted))
	}
	if s.DMA != nil {
		fmt.Printf("  DMA transfers       %d\n", s.DMA.Counters().Get(sim.EvDMATransfer))
	}
	fmt.Printf("  CAN rx/drop         %d/%d\n", app.CAN.Received, app.CAN.Dropped)
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
