// Package repro is a from-scratch Go reproduction of "System Performance
// Optimization Methodology for Infineon's 32-Bit Automotive Microcontroller
// Architecture" (Mayer & Hellwig, DATE 2008).
//
// The library lives under internal/: a cycle-stepped TriCore-like SoC
// simulator (CPU, PCP, DMA, buses, embedded flash, caches, peripherals),
// the Emulation Device extension (MCDS trigger/trace block, Emulation
// Memory, DAP tool link), the Enhanced System Profiling methodology, a
// synthetic customer-application generator, and the architecture
// optimization methodology that ranks SoC improvement options by
// performance-gain/cost ratio.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and experiment mapping, and EXPERIMENTS.md for the measured
// results. The root bench_test.go regenerates every experiment as a Go
// benchmark; cmd/experiments prints the full tables.
package repro
