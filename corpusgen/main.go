// corpusgen regenerates the checked-in fuzz seed corpora under
// internal/isa/testdata/fuzz/ and internal/tricore/testdata/fuzz/ from the
// real instruction encoder, so the seeds stay valid if encodings change.
// Run from the repo root: go run ./corpusgen
package main

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/isa"
)

func write(dir, name string, lines ...string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		panic(err)
	}
	body := "go test fuzz v1\n"
	for _, l := range lines {
		body += l + "\n"
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		panic(err)
	}
}

func words(ins ...isa.Instr) []byte {
	b := make([]byte, 4*len(ins))
	for i, in := range ins {
		binary.LittleEndian.PutUint32(b[4*i:], in.Encode())
	}
	return b
}

func main() {
	// --- internal/isa FuzzDecodeInstr: one representative word per op
	// class plus near-miss garbage (valid tag, junk fields).
	instrDir := "internal/isa/testdata/fuzz/FuzzDecodeInstr"
	reps := []isa.Instr{
		{Op: isa.OpMOVI, Rd: 1, Imm: -10},
		{Op: isa.OpMOVH, Rd: 2, Imm: 0x8000},
		{Op: isa.OpORIL, Rd: 2, Imm: 0xBEEF},
		{Op: isa.OpADD, Rd: 3, Ra: 1, Rb: 2},
		{Op: isa.OpMUL, Rd: 4, Ra: 3, Rb: 3},
		{Op: isa.OpMAC, Rd: 5, Ra: 4, Rb: 1},
		{Op: isa.OpSRA, Rd: 6, Ra: 5, Rb: 2},
		{Op: isa.OpADDI, Rd: 7, Ra: 6, Imm: 2047},
		{Op: isa.OpSHLI, Rd: 8, Ra: 7, Imm: 31},
		{Op: isa.OpLDW, Rd: 9, Ra: 1, Imm: 8},
		{Op: isa.OpLDB, Rd: 10, Ra: 1, Imm: -1},
		{Op: isa.OpSTW, Rd: 9, Ra: 1, Imm: 8},
		{Op: isa.OpSTB, Rd: 10, Ra: 1, Imm: 3},
		{Op: isa.OpLEA, Rd: 11, Ra: 1, Imm: 64},
		{Op: isa.OpBEQ, Ra: 1, Rb: 2, Imm: -3},
		{Op: isa.OpBLTU, Ra: 3, Rb: 4, Imm: 100},
		{Op: isa.OpJ, Imm: -(1 << 20)},
		{Op: isa.OpCALL, Imm: 1 << 20},
		{Op: isa.OpJR, Ra: 14},
		{Op: isa.OpLOOP, Ra: 9, Imm: -5},
		{Op: isa.OpMFCR, Rd: 1, Imm: 3},
		{Op: isa.OpMTCR, Ra: 1, Imm: 3},
		{Op: isa.OpRFE},
		{Op: isa.OpHALT},
		{Op: isa.OpDBG},
	}
	for i, in := range reps {
		write(instrDir, fmt.Sprintf("op-%02d-%s", i, in.Op),
			fmt.Sprintf("uint32(%d)", in.Encode()))
	}
	// Near-misses: the highest valid op tag with all payload bits set, and
	// the first invalid tag.
	halt := isa.Instr{Op: isa.OpHALT}.Encode()
	write(instrDir, "junk-payload", fmt.Sprintf("uint32(%d)", halt|0x00FFFFFF))
	write(instrDir, "bad-opcode", fmt.Sprintf("uint32(%d)",
		uint32(isa.NumOps)<<24|0x123456))

	// --- internal/isa FuzzDecoderBlock: decoded-block shapes that hit the
	// builder's edges — fused pairs, every terminator class, the length
	// cap, and invalid words in the stream.
	blockDir := "internal/isa/testdata/fuzz/FuzzDecoderBlock"
	write(blockDir, "fuse-shapes", fmt.Sprintf("[]byte(%q)", words(
		isa.Instr{Op: isa.OpLDW, Rd: 4, Ra: 1, Imm: 8},
		isa.Instr{Op: isa.OpADDI, Rd: 5, Ra: 4, Imm: 1}, // load-use pair
		isa.Instr{Op: isa.OpADD, Rd: 6, Ra: 5, Rb: 5},
		isa.Instr{Op: isa.OpSUB, Rd: 7, Ra: 6, Rb: 5}, // same-pipe pair
		isa.Instr{Op: isa.OpSTW, Rd: 7, Ra: 1, Imm: 12},
		isa.Instr{Op: isa.OpLOOP, Ra: 9, Imm: -5}, // st+loop pair
	)))
	write(blockDir, "call-terminated", fmt.Sprintf("[]byte(%q)", words(
		isa.Instr{Op: isa.OpMOVI, Rd: 1, Imm: 7},
		isa.Instr{Op: isa.OpCALL, Imm: 12},
		isa.Instr{Op: isa.OpJR, Ra: 14},
	)))
	write(blockDir, "branch-terminated", fmt.Sprintf("[]byte(%q)", words(
		isa.Instr{Op: isa.OpSLT, Rd: 3, Ra: 1, Rb: 2},
		isa.Instr{Op: isa.OpBNE, Ra: 3, Rb: 0, Imm: -2},
		isa.Instr{Op: isa.OpHALT},
	)))
	write(blockDir, "invalid-midstream", fmt.Sprintf("[]byte(%q)", append(words(
		isa.Instr{Op: isa.OpADDI, Rd: 1, Ra: 1, Imm: 1}),
		0xFF, 0xFF, 0xFF, 0xFF, 0x00, 0x00, 0x00, 0x00)))
	longRun := make([]isa.Instr, isa.MaxBlockInstrs+8)
	for i := range longRun {
		longRun[i] = isa.Instr{Op: isa.OpXORI, Rd: uint8(i % 15), Ra: uint8(i % 7), Imm: int32(i)}
	}
	write(blockDir, "length-cap", fmt.Sprintf("[]byte(%q)", words(longRun...)))
	write(blockDir, "truncated-tail", fmt.Sprintf("[]byte(%q)",
		append(words(isa.Instr{Op: isa.OpORI, Rd: 2, Ra: 2, Imm: 255}), 0x9A, 0x02)))

	// --- internal/isa FuzzParseAsm: the documented surface plus the error
	// paths (bad register, unknown mnemonic, duplicate label, overflow).
	asmDir := "internal/isa/testdata/fuzz/FuzzParseAsm"
	write(asmDir, "loop-kernel", fmt.Sprintf("string(%q)",
		".org 0x80000000\nmovh r1, 0xD000\nmovi r3, 100\nbody:\n  ldw r2, [r1+0]\n  addi r2, r2, 1\n  stw [r1+0], r2\n  loop r3, body\nhalt\n"))
	write(asmDir, "directives", fmt.Sprintf("string(%q)",
		".org 0xA0000000\n.word 0xDEADBEEF\n.word 0\nmfcr r1, csr3\nmtcr csr3, r1\nrfe\n"))
	write(asmDir, "branches", fmt.Sprintf("string(%q)",
		"top: beq r1, r2, +3\nbne r1, r2, top\nbltu r3, r4, -2\nj top\ncall top\njr r14\n"))
	write(asmDir, "bad-register", fmt.Sprintf("string(%q)", "movi r16, 1\n"))
	write(asmDir, "unknown-mnemonic", fmt.Sprintf("string(%q)", "frobnicate r1, r2\n"))
	write(asmDir, "dup-label", fmt.Sprintf("string(%q)", "x: nop\nx: nop\n"))
	write(asmDir, "comments-unicode", fmt.Sprintf("string(%q)",
		"; Grüße # éé\nnop ; trailing\n"))

	// --- internal/tricore FuzzBlockDecodeDifferential: (seed, sel) pairs
	// covering every rig variant and both code placements (bit 7 selects
	// the program scratchpad).
	diffDir := "internal/tricore/testdata/fuzz/FuzzBlockDecodeDifferential"
	for i, sel := range []byte{0, 1, 2, 3, 4, 0x80, 0x82, 0x84} {
		write(diffDir, fmt.Sprintf("variant-%02x", sel),
			fmt.Sprintf("uint64(%d)", 100+i),
			fmt.Sprintf("byte(%q)", sel))
	}
}
