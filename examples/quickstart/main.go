// Quickstart: build a TC1797ED, run a small synthetic engine-control
// application, and measure IPC and the cache/flash access rates through
// the Enhanced System Profiling session — the minimal end-to-end use of
// the library.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/profiling"
	"repro/internal/soc"
	"repro/internal/workload"
)

func main() {
	// 1. The Emulation Device twin of the TC1797 (product SoC + EEC).
	s := soc.New(soc.TC1797().WithED(), 42)

	// 2. A synthetic customer application (interrupt-driven engine
	//    control with flash-resident lookup tables).
	app, err := workload.Build(s, workload.Spec{
		Name: "quickstart", Seed: 42,
		CodeKB: 16, TableKB: 16, FilterTaps: 12, DiagBranches: 8,
		ADCPeriod: 2500, TimerPeriod: 9000, CANMeanGap: 5000,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Program the MCDS: all standard parameters, in parallel,
	//    non-intrusively, one sample per 1000 executed instructions.
	sess := profiling.NewSession(s, profiling.Spec{
		Resolution: 1000,
		Params:     profiling.StandardParams(),
	})

	// 4. Run and read the profile back (the context makes long measurement
	//    runs cancellable; Background means "run to the horizon").
	if err := sess.Run(context.Background(), app, 500_000); err != nil {
		log.Fatal(err)
	}
	prof, err := sess.Result("quickstart")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ran %d instructions in %d cycles\n", prof.Instr, prof.Cycles)
	fmt.Printf("IPC               %.3f (hardware bound: 3.0)\n", prof.Rate("ipc"))
	miss := profiling.Sample{Basis: 100, Count: uint64(100 * prof.Rate("icache_miss"))}
	fmt.Printf("I-cache hit rate  %.1f%% (paper convention)\n", profiling.HitRatePct(miss))
	fmt.Printf("data flash reads  %.2f%% of instructions\n", 100*prof.Rate("dflash_read"))
	fmt.Printf("stalled cycles    %.1f%%\n", 100*prof.Rate("stall_any"))
	fmt.Printf("trace volume      %d bytes for %d parameters\n",
		prof.TraceBytes, len(profiling.StandardParams()))
}
