// Dualcore: the paper's closing claim made concrete — "The proposed
// approach is sustainable for increasing clock frequencies and number of
// cores even with the limited bandwidth of affordable tool interfaces."
//
// A two-TriCore device (the direction the AURIX family later realized)
// runs two different customer applications, one per core; a single MCDS
// profiles both in parallel, plus the PCP and the shared buses, and the
// whole stream still fits the usual drain path.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/profiling"
	"repro/internal/sim"
	"repro/internal/soc"
	"repro/internal/workload"
)

func main() {
	cfg := soc.TC1797().WithED()
	cfg.SecondCore = true
	s := soc.New(cfg, 5)

	// Core 0: engine control (flash-heavy lookup tables, EEPROM).
	engine, err := workload.Build(s, workload.Spec{
		Name: "engine", Seed: 5, CodeKB: 24, TableKB: 32, FilterTaps: 16,
		DiagBranches: 12, ADCPeriod: 2500, TimerPeriod: 9000, CANMeanGap: 5000,
		EEPROMEmul: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Core 1: transmission control (compute-heavy, scratchpad tables,
	// CAN offloaded to the PCP).
	gearbox, err := workload.Build(s, workload.Spec{
		Name: "gearbox", Seed: 6, CodeKB: 8, TableKB: 16, FilterTaps: 32,
		DiagBranches: 20, ADCPeriod: 3200, TimerPeriod: 12000, CANMeanGap: 6500,
		TablesInScratch: true, CANOnPCP: true, CoreIndex: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	params := append(profiling.StandardParams(), profiling.CPU1Params()...)
	params = append(params, profiling.PCPParams()...)
	sess := profiling.NewSession(s, profiling.Spec{Resolution: 1000, Params: params})

	// One shared clock advances both cores.
	if err := sess.Run(context.Background(), engine, 800_000); err != nil {
		log.Fatal(err)
	}

	prof, err := sess.Result("dualcore")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("device: %s + second TriCore core, one MCDS over %d parameters\n",
		cfg.Name, len(params))
	fmt.Printf("\n%-12s %10s %12s %14s %12s\n", "core", "IPC", "iterations", "flash rd/instr", "interrupts")
	e := engine.CPU().Counters()
	g := gearbox.CPU().Counters()
	fmt.Printf("%-12s %10.3f %12d %14.4f %12d\n", "engine",
		prof.Rate("ipc"), engine.CPU().Reg(9),
		prof.Rate("dflash_read"), e.Get(sim.EvInterruptEntry))
	fmt.Printf("%-12s %10.3f %12d %14.4f %12d\n", "gearbox",
		prof.Rate("cpu1_ipc"), gearbox.CPU().Reg(9),
		prof.Rate("cpu1_dflash_read"), g.Get(sim.EvInterruptEntry))
	fmt.Printf("%-12s %10.3f\n", "pcp", prof.Rate("pcp_ipc"))

	fmt.Printf("\nshared-resource view (what the architect reads off):\n")
	fmt.Printf("  data-bus contention  %.5f events/instr (both cores on one LMB)\n",
		prof.Rate("bus_contention"))
	fmt.Printf("  flash port conflicts %.5f events/instr\n", prof.Rate("flash_port_conflict"))
	fmt.Printf("  trace volume         %d bytes, %d messages lost\n",
		prof.TraceBytes, prof.MsgsLost)

	if engine.CPU().Reg(9) == 0 || gearbox.CPU().Reg(9) == 0 {
		log.Fatal("a core made no progress")
	}
	if prof.Rate("cpu1_ipc") <= 0 {
		log.Fatal("second core invisible to the MCDS")
	}
}
