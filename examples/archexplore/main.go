// Archexplore: the SoC architect's view — aggregate profiles across a
// fleet of differently-structured customer applications, rank the
// architecture option catalog by gain/cost, and drive one F-model
// generation (paper Sections 4 and 6, Figure 1).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/soc"
	"repro/internal/workload"
)

func main() {
	fleet := workload.Fleet(4, 2026)
	fmt.Println("customer fleet (each structurally different, as in the field):")
	for _, sp := range fleet {
		split := "CAN on CPU"
		if sp.CANOnPCP {
			split = "CAN on PCP"
		}
		if sp.CANViaDMA {
			split = "CAN via DMA"
		}
		tbl := "tables in flash"
		if sp.TablesInScratch {
			tbl = "tables in scratchpad"
		}
		fmt.Printf("  %-10s code %2dKB, tables %2dKB, %s, %s\n",
			sp.Name, sp.CodeKB, sp.TableKB, split, tbl)
	}

	prm := core.DefaultEvalParams()
	prm.Iters = 150
	prm.ProfileHorizon = 250_000

	fmt.Println("\nprofiles on the current generation (TC1797):")
	for _, sp := range fleet {
		ap, err := core.ProfileApp(soc.TC1797(), sp, prm.ProfileHorizon)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", ap)
	}

	ev, err := core.Evaluate(soc.TC1797(), fleet, core.Catalog(), prm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noption ranking (analytical estimate vs re-simulated ground truth):")
	fmt.Printf("  %-18s %9s %9s %9s %10s\n", "option", "est", "measured", "worst app", "gain/area")
	for _, r := range ev.Ranking {
		tag := ""
		if r.Rejected {
			tag = "  <- rejected (regresses a use case)"
		}
		fmt.Printf("  %-18s %9.3f %9.3f %9.3f %10.4f%s\n",
			r.Option.Name, r.EstMean, r.MeaMean, r.MeaMin, r.GainPerArea, tag)
	}

	chain, err := core.FModel(soc.TC1797(), fleet, core.Catalog(), prm, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nF-model step:")
	for i, g := range chain {
		fmt.Printf("  generation %d: %s", i, g.Config.Name)
		if g.Chosen != nil {
			fmt.Printf("  (adopting %s, measured gain %.3f)",
				g.Chosen.Option.Name, g.Chosen.MeaMean)
		}
		fmt.Println()
	}
}
