// Enginecontrol: the full profiling workflow of the paper's Section 5 on a
// realistic interrupt-driven engine-control application — parallel
// parameter measurement with a DAP drain, hot-window detection on the IPC
// timeline, and function-level attribution from the program flow trace.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/dap"
	"repro/internal/profiling"
	"repro/internal/soc"
	"repro/internal/tmsg"
	"repro/internal/workload"
)

func main() {
	cfg := soc.TC1797().WithED()
	s := soc.New(cfg, 7)
	app, err := workload.Build(s, workload.Spec{
		Name: "engine", Seed: 7,
		CodeKB: 32, TableKB: 64, FilterTaps: 24, DiagBranches: 16,
		ADCPeriod: 2000, TimerPeriod: 8000, CANMeanGap: 4000,
		EEPROMEmul: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Parallel measurement of every standard parameter, drained live over
	// the two-pin DAP while the application runs.
	link := dap.DefaultConfig(cfg.CPUFreqMHz)
	sess := profiling.NewSession(s, profiling.Spec{
		Resolution: 500,
		Params:     profiling.StandardParams(),
		DAP:        &link,
	})
	sess.CPUObs().FlowTrace = true

	if err := sess.Run(context.Background(), app, 1_500_000); err != nil {
		log.Fatal(err)
	}
	prof, err := sess.Result("engine")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("=== run summary (%s) ===\n", cfg.Name)
	fmt.Printf("instructions %d, cycles %d, IPC %.3f\n",
		prof.Instr, prof.Cycles, prof.Rate("ipc"))
	fmt.Printf("trace %d bytes, %d messages lost (flow trace exceeds the DAP)\n\n",
		prof.TraceBytes, prof.MsgsLost)

	fmt.Println("=== parameter rates (per instruction unless noted) ===")
	for _, name := range prof.Names() {
		se := prof.Series[name]
		if len(se.Samples) == 0 {
			continue
		}
		fmt.Printf("  %-22s mean %.4f   range [%.4f, %.4f]\n",
			name, se.Mean(), se.Min(), se.Max())
	}

	// "identify the interesting spaces of time where the system
	// performance is not optimal"
	hot := prof.HotWindows("ipc", 0.85)
	fmt.Printf("\n=== hot windows: IPC < 0.85 ===\n")
	fmt.Printf("%d of %d windows; first few:\n", len(hot), len(prof.Series["ipc"].Samples))
	for i, h := range hot {
		if i >= 5 {
			break
		}
		fmt.Printf("  cycle %8d: IPC %.3f\n", h.Cycle, h.Rate())
	}

	// Function-level attribution from the flow trace ("System Profiling
	// is the analysis of the application software on function level").
	var dec tmsg.Decoder
	msgs, _, err := dec.DecodeAll(sess.DAP.Received)
	if err != nil {
		log.Fatal(err)
	}
	costs := profiling.FunctionProfile(msgs, 0, app.Prog)
	fmt.Printf("\n=== hottest functions (from reconstructed flow trace) ===\n")
	var total uint64
	for _, fc := range costs {
		total += fc.Instr
	}
	for i, fc := range costs {
		if i >= 8 {
			break
		}
		name := fc.Name
		if name == "" {
			name = "(startup)"
		}
		fmt.Printf("  %-18s %8d instr  %5.1f%%\n", name, fc.Instr,
			100*float64(fc.Instr)/float64(total))
	}
}
