// Triggercascade: direct MCDS programming below the profiling layer —
// cascaded counters (a coarse IPC watch arms fine-grained capture only in
// degraded phases), a watchdog that triggers when an event does NOT happen
// within a time window, and a state machine gating the data trace to one
// function, all evaluated over the shared signal cross-connect.
package main

import (
	"fmt"
	"log"

	"repro/internal/isa"
	"repro/internal/mcds"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/soc"
	"repro/internal/tmsg"
)

func main() {
	s := soc.New(soc.TC1797().WithED(), 1)

	// A two-phase program: fast scratch loop, then slow dependent flash
	// loads; it also pets a "heartbeat" DSPR address, but stops doing so
	// in the second phase — which the watchdog catches.
	a := isa.NewAsm(mem.FlashBase)
	a.Movw(1, mem.DSPRBase)
	a.Movw(7, mem.FlashBase+0x20000)
	a.Movw(9, 20) // phases
	a.Label("phase")
	a.Movw(3, 2000)
	a.Label("fast")
	a.Addi(2, 2, 1)
	a.Stw(2, 1, 0) // heartbeat
	a.Loop(3, "fast")
	a.Movw(4, 150) // slow phase: strided dependent flash loads, no heartbeat
	a.Label("slow")
	a.Ldw(5, 7, 0)
	a.Add(6, 5, 6) // depends on the load
	a.Mul(6, 6, 5)
	a.Addi(7, 7, 32) // next cache line every iteration
	a.Loop(4, "slow")
	a.Loop(9, "phase")
	a.Halt()
	prog, err := a.Assemble()
	if err != nil {
		log.Fatal(err)
	}
	s.LoadProgram(prog)
	s.ResetCPU(prog.Base)

	m := mcds.New("mcds", s.EMEM)
	core := m.AddCore(s.CPU, 0)

	// Cascade: coarse IPC watch arms the fine counter below 1.2 IPC.
	below := m.AllocSignal("ipc-low")
	above := m.AllocSignal("ipc-ok")
	coarse := mcds.NewRateCounter("ipc-coarse", 1,
		mcds.Tap{Obs: core, Event: sim.EvInstrExecuted},
		mcds.Tap{Obs: core, Event: sim.EvCycle}, 500)
	coarse.Emit = false
	coarse.ThreshNum, coarse.ThreshDen = 12, 10
	coarse.Below, coarse.Above = below, above
	m.AddCounter(coarse)

	fine := mcds.NewRateCounter("ipc-fine", 2,
		mcds.Tap{Obs: core, Event: sim.EvInstrExecuted},
		mcds.Tap{Obs: core, Event: sim.EvCycle}, 50)
	fine.Enabled = false
	m.AddCounter(fine)

	m.AddRule(&mcds.TriggerRule{Name: "arm", When: mcds.On(below),
		Do: []mcds.Action{{Kind: mcds.ActEnableCounter, Counter: fine}}})
	m.AddRule(&mcds.TriggerRule{Name: "disarm", When: mcds.On(above),
		Do: []mcds.Action{{Kind: mcds.ActDisableCounter, Counter: fine}}})

	// Watchdog: heartbeat store must occur at least every 300 cycles
	// ("trigger on events not happening in a defined time window").
	wdFire := m.AllocSignal("heartbeat-lost")
	hb := m.AddComparator(&mcds.Comparator{Name: "heartbeat", Core: core,
		Kind: mcds.CompAddr, Lo: mem.DSPRBase, Hi: mem.DSPRBase + 4,
		Dir: mcds.RWWrite, Signal: m.AllocSignal("heartbeat-seen")})
	_ = hb
	wd := &mcds.Counter{Name: "wd", ID: 3, Mode: mcds.ModeWatchdog,
		Src:        mcds.Tap{Obs: core, Event: sim.EvDScratchAccess},
		Resolution: 300, Below: mcds.NoSignal, Above: wdFire,
		EmitTriggerOnFire: true, TriggerID: 9, Enabled: true}
	m.AddCounter(wd)

	s.Clock.Attach("mcds", m)
	if _, ok := s.RunUntilHalt(50_000_000); !ok {
		log.Fatal("did not halt")
	}
	s.Clock.Step()

	var dec tmsg.Decoder
	msgs, _, err := dec.DecodeAll(s.EMEM.Drain(s.EMEM.Level()))
	if err != nil {
		log.Fatal(err)
	}
	var fineWins, triggers int
	for _, msg := range msgs {
		switch msg.Kind {
		case tmsg.KindRate:
			if msg.CounterID == 2 {
				fineWins++
			}
		case tmsg.KindTrigger:
			if msg.TriggerID == 9 {
				triggers++
			}
		}
	}
	fmt.Printf("coarse IPC windows:        %d (%d below threshold)\n", coarse.Windows, coarse.Fires)
	fmt.Printf("fine IPC windows captured: %d (only in degraded phases)\n", fineWins)
	fmt.Printf("watchdog firings:          %d (heartbeat silent > 300 cycles)\n", wd.Fires)
	fmt.Printf("trigger messages:          %d\n", triggers)
	fmt.Printf("trace bytes:               %d\n", m.BytesEmitted)
	if fineWins == 0 || wd.Fires == 0 {
		log.Fatal("cascade or watchdog failed to engage")
	}
}
