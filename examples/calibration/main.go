// Calibration: the Emulation Device's original purpose — overlay RAM for
// tuning flash-resident characteristic maps at development time. A torque
// map in flash is overlaid page-by-page with EMEM, the application picks
// up the tuned values immediately, and removing the page restores the
// production data (paper Section 3).
package main

import (
	"fmt"
	"log"

	"repro/internal/emem"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/soc"
)

func main() {
	s := soc.New(soc.TC1797().WithED(), 1)

	// Production torque map: 16 words in flash.
	mapBase := uint32(mem.FlashBase + 0x40000)
	for i := uint32(0); i < 16; i++ {
		v := 1000 + i*10
		s.Flash.Load(mapBase+i*4, []byte{byte(v), byte(v >> 8), 0, 0})
	}

	// The application sums the map each pass (a stand-in for the torque
	// computation) and leaves the result in r5.
	a := isa.NewAsm(mem.FlashBase)
	a.Movw(1, mapBase)
	a.Movi(4, 16)
	a.Movi(5, 0)
	a.Label("sum")
	a.Ldw(2, 1, 0)
	a.Add(5, 5, 2)
	a.Addi(1, 1, 4)
	a.Loop(4, "sum")
	a.Halt()
	prog, err := a.Assemble()
	if err != nil {
		log.Fatal(err)
	}
	s.LoadProgram(prog)

	run := func(tag string) uint32 {
		// Calibration changes remap memory behind the caches; flush them,
		// as the real tooling does after overlay reconfiguration.
		s.InvalidateCaches()
		s.ResetCPU(prog.Base)
		if _, ok := s.RunUntilHalt(1_000_000); !ok {
			log.Fatal("did not halt")
		}
		sum := s.CPU.Reg(5)
		fmt.Printf("%-28s map sum = %d\n", tag, sum)
		return sum
	}

	prodSum := run("production flash values:")

	// Calibration engineer maps an EMEM overlay page over the map and
	// tunes two cells (e.g. enrichment at high load).
	const pageOff = 0x80
	s.Overlay.MapPage(emem.Page{FlashAddr: mapBase, EmemOff: pageOff, Size: 64})
	// The page starts as a copy of the flash content...
	buf := make([]byte, 64)
	s.Flash.ReadDirect(mapBase, buf)
	s.EMEM.RAM.Write(mem.EMEMBase+pageOff, buf)
	// ...then two cells are tuned through the tool.
	s.EMEM.RAM.Write32(mem.EMEMBase+pageOff+0, 2000)
	s.EMEM.RAM.Write32(mem.EMEMBase+pageOff+4, 2100)

	calSum := run("with calibration overlay:")
	if calSum == prodSum {
		log.Fatal("overlay had no effect")
	}

	s.Overlay.ClearPages()
	backSum := run("overlay removed:")
	if backSum != prodSum {
		log.Fatal("production values not restored")
	}

	fmt.Printf("\noverlay accesses redirected: %d, passed through: %d\n",
		s.Overlay.Redirected, s.Overlay.PassedThru)
	fmt.Printf("EMEM: %d KB total, %d KB reserved for calibration overlay\n",
		s.EMEM.Size()>>10, s.EMEM.OverlayBytes()>>10)
}
