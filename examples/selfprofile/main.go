// Selfprofile: the paper's late-development-phase access path (Section 3).
// In early development the external tool reads the EEC over the DAP; once
// the ECU is sealed in the car, "a tool can communicate over a user
// interface like CAN or FlexRay with a monitor routine, running on
// TriCore, which then accesses the EEC."
//
// Here the TriCore application profiles itself: a timer-driven monitor ISR
// reads the MCDS instruction counter through the memory-mapped EEC
// register file and transmits the value in its FlexRay slot, while the
// main loop keeps doing engine work.
package main

import (
	"fmt"
	"log"

	"repro/internal/irq"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/periph"
	"repro/internal/profiling"
	"repro/internal/soc"
)

func main() {
	s := soc.New(soc.TC1797().WithED(), 11)

	// FlexRay node: 10-slot static cycle of 2000 cycles; our TX slot is 4.
	fr, _ := s.AddFlexRay("flexray", 2000, 10, nil, 4, 8, 1, irq.ToCPU, 0)

	// Application: init (r10 = ISR save base), work loop, monitor ISR.
	a := isa.NewAsm(mem.FlashBase)
	a.Movw(10, mem.DSPRBase)
	a.Movi(1, 1)
	a.Mtcr(isa.CsrICR, 1) // enable interrupts
	a.Movi(9, 0)
	a.Movw(4, 150_000)
	a.Label("work")
	a.Addi(2, 2, 1)
	a.Mul(3, 2, 2)
	a.Addi(9, 9, 1)
	a.Blt(9, 4, "work")
	a.Halt()

	// Monitor ISR: uses r1/r2, saved to r10-relative slots.
	a.Label("monitor")
	a.Stw(1, 10, 0)
	a.Stw(2, 10, 4)
	a.Movw(1, mem.MCDSRegBase+0x10) // counter 0 register block
	a.Ldw(2, 1, 4)                  // total executed instructions
	a.Movw(1, fr.Base+periph.RegPeriod)
	a.Stw(2, 1, 0) // arm the FlexRay TX register
	a.Ldw(1, 10, 0)
	a.Ldw(2, 10, 4)
	a.Rfe()

	prog, err := a.Assemble()
	if err != nil {
		log.Fatal(err)
	}
	s.LoadProgram(prog)
	s.ResetCPU(prog.Base)

	var monitor uint32
	for _, sym := range prog.Syms {
		if sym.Name == "monitor" {
			monitor = sym.Addr
		}
	}
	s.AddTimer("montimer", 10_000, 500, 7, irq.ToCPU, monitor)

	// MCDS session: standard parameters, measured in parallel on-chip;
	// the session also maps the EEC register file the monitor reads.
	sess := profiling.NewSession(s, profiling.Spec{
		Resolution: 1000,
		Params:     profiling.StandardParams(),
	})

	if _, ok := s.RunUntilHalt(100_000_000); !ok {
		log.Fatal("did not halt")
	}
	s.Clock.Step()

	prof, err := sess.Result("selfprofile")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monitor ISR ran and read the EEC %d times\n", sess.Regs.Reads)
	fmt.Printf("FlexRay frames transmitted with live counter values: %d\n", fr.TxFrames)
	fmt.Printf("in parallel, the full on-chip profile was captured: IPC %.3f, %d parameters\n",
		prof.Rate("ipc"), len(prof.Series))
	if fr.TxFrames == 0 || sess.Regs.Reads == 0 {
		log.Fatal("monitor path inactive")
	}
}
