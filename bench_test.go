// Benchmark harness: one benchmark per reproduced experiment (E1–E8, F1 in
// DESIGN.md). Each benchmark regenerates its experiment and reports the
// headline numbers via b.ReportMetric, so `go test -bench=. -benchmem`
// reproduces the entire evaluation. cmd/experiments prints the same data
// as full tables.
package repro_test

import (
	"testing"

	"repro/internal/experiments"
)

func report(b *testing.B, t *experiments.Table, keys ...string) {
	b.Helper()
	for _, k := range keys {
		if v, ok := t.Metrics[k]; ok {
			b.ReportMetric(v, k)
		}
	}
}

// BenchmarkE1RateSemantics regenerates the Section 5 worked examples:
// 6 data flash reads per 100 instructions ⇒ 6 % rate; 4 I-cache misses
// per 100 instructions ⇒ 96 % hit rate.
func BenchmarkE1RateSemantics(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E1RateSemantics()
	}
	report(b, t, "dflash_rate", "exact_window_fraction", "hitrate_convention")
}

// BenchmarkE2IPCTimeline regenerates the dynamic IPC measurement at three
// resolutions (bounded by the 3-wide core).
func BenchmarkE2IPCTimeline(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E2IPCTimeline()
	}
	report(b, t, "ipc_mean", "ipc_max")
}

// BenchmarkE3Bandwidth regenerates the tool-link bandwidth comparison:
// rate messages vs external counter sampling vs full program trace.
func BenchmarkE3Bandwidth(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E3Bandwidth()
	}
	report(b, t, "sampling_over_rate", "trace_over_rate")
}

// BenchmarkE4Cascade regenerates the cascaded-counter measurement
// (high-resolution capture armed only below the IPC threshold).
func BenchmarkE4Cascade(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E4Cascade()
	}
	report(b, t, "bytes_saved_factor", "low_ipc_coverage")
}

// BenchmarkE5Intrusiveness regenerates the perturbation comparison: MCDS
// profiling (exactly zero) vs software instrumentation.
func BenchmarkE5Intrusiveness(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E5Intrusiveness()
	}
	report(b, t, "mcds_overhead", "sw_overhead")
}

// BenchmarkE6OptionRanking regenerates the architecture option ranking
// (analytical estimate vs re-simulated gain, ranked by gain/area).
func BenchmarkE6OptionRanking(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E6OptionRanking(true)
	}
	report(b, t, "best_gain_per_area", "best_meas_gain", "est_sign_agreement", "best_is_flash_path")
}

// BenchmarkE7FlashLever regenerates the flash-path sensitivity sweep
// against the SRAM-latency control.
func BenchmarkE7FlashLever(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E7FlashLever()
	}
	report(b, t, "ws_sensitivity", "sram_sensitivity", "flash_vs_sram_lever")
}

// BenchmarkE8CycleTrace regenerates the multi-core cycle-accurate trace
// merge (shared-variable access order).
func BenchmarkE8CycleTrace(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E8CycleTrace()
	}
	report(b, t, "order_violations", "shared_events")
}

// BenchmarkE9Multicore regenerates the multi-core scalability experiment
// (two TriCore cores under one MCDS).
func BenchmarkE9Multicore(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E9Multicore()
	}
	report(b, t, "rate_scaling", "flow_over_rate_2core", "order_preserved")
}

// BenchmarkE10FaultRecovery regenerates the fault-recovery measurement:
// decode throughput and recovery latency of the hardened tool link at
// 0 / 0.1 / 1 % corruption.
func BenchmarkE10FaultRecovery(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E10FaultRecovery()
	}
	report(b, t, "delivered_frac_clean", "delivered_frac_1pct",
		"recovery_cycles_1pct", "decode_mbps_clean", "decode_mbps_1pct", "retries_1pct")
}

// BenchmarkF1FModel regenerates the generational F-model loop (Figure 1).
func BenchmarkF1FModel(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.F1FModel(true)
	}
	report(b, t, "generations", "cumulative_gain")
}

// BenchmarkA1RateBasis regenerates the rate-basis ablation (instruction vs
// cycle basis across hardware speeds).
func BenchmarkA1RateBasis(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.A1RateBasis()
	}
	report(b, t, "instr_basis_drift", "cycle_basis_drift")
}

// BenchmarkA2Compression regenerates the trace-compression ablation.
func BenchmarkA2Compression(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.A2Compression()
	}
	report(b, t, "compression_factor")
}

// BenchmarkA3FlashArbitration regenerates the port-arbitration ablation.
func BenchmarkA3FlashArbitration(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.A3FlashArbitration()
	}
	report(b, t, "slowdown_fcfs", "slowdown_data-priority")
}

// BenchmarkA4TraceBufferSizing regenerates the EMEM sizing ablation.
func BenchmarkA4TraceBufferSizing(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.A4TraceBufferSizing()
	}
	report(b, t, "loss_2kb", "loss_384kb")
}
